//! FnX — the federated FaaS fabric (the paper's FuncX, §IV-B).
//!
//! Task submissions travel through a cloud-hosted service: the client
//! makes an HTTPS call; the cloud stores the payload (a fast KV tier for
//! payloads ≤ 20 kB, an object store above that — FuncX's
//! ElastiCache/S3 split, §V-C1) and forwards the task to the endpoint's
//! outbound connection; the endpoint fetches the payload and hands the
//! task to a worker. Results retrace the path. Payloads above 10 MB are
//! rejected, which is why large data must move via ProxyStore.
//!
//! Effective payload throughput through the cloud tiers is low (API
//! chunking, base64/pickle inflation); values are calibrated so the
//! server→worker communication reductions of Fig. 3 (~2–3× at 10 kB,
//! ~10× at 1 MB when proxied) are reproduced.

use crate::fabric::Fabric;
use crate::reliability::RetryPolicies;
use crate::task::{Arg, TaskError, TaskOutcome, TaskResult, TaskSpec, WorkerReport};
use crate::worker::{WorkerPool, WorkerPoolConfig};
use hetflow_sim::{channel, trace_kinds as kinds, Dist, Sender, Sim, SimRng, Tracer};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

/// Tunables of the cloud FaaS model.
#[derive(Clone, Debug)]
pub struct FnXParams {
    /// Client→cloud HTTPS request latency (the dispatch cost the paper
    /// reports as "a median of 100 ms", §V-D3).
    pub https_latency: Dist,
    /// Fast-KV tier (ElastiCache) per-operation latency.
    pub small_store_op: Dist,
    /// Fast-KV tier effective payload throughput, bytes/s.
    pub small_store_bw: f64,
    /// Object-store tier (S3) per-operation latency.
    pub large_store_op: Dist,
    /// Object-store tier effective payload throughput, bytes/s.
    pub large_store_bw: f64,
    /// Payloads at or below this use the fast-KV tier (20 kB in FuncX).
    pub small_threshold: u64,
    /// Hard payload cap (10 MB in FuncX); larger submissions panic.
    pub payload_cap: u64,
    /// Cloud→endpoint forwarding latency (outbound AMQP connection).
    pub forward_latency: Dist,
    /// Cloud→client result delivery latency.
    pub result_latency: Dist,
}

impl Default for FnXParams {
    fn default() -> Self {
        FnXParams {
            https_latency: Dist::LogNormal { median: 0.09, sigma: 0.35 },
            small_store_op: Dist::LogNormal { median: 0.04, sigma: 0.3 },
            small_store_bw: 4.0e4,
            large_store_op: Dist::LogNormal { median: 0.2, sigma: 0.3 },
            large_store_bw: 8.0e5,
            small_threshold: 20_000,
            payload_cap: 10_000_000,
            forward_latency: Dist::LogNormal { median: 0.05, sigma: 0.3 },
            result_latency: Dist::LogNormal { median: 0.06, sigma: 0.3 },
        }
    }
}

impl FnXParams {
    /// Cost of one cloud-store put or get for a payload of `bytes`.
    fn store_op(&self, rng: &mut SimRng, bytes: u64) -> std::time::Duration {
        let (op, bw) = if bytes <= self.small_threshold {
            (&self.small_store_op, self.small_store_bw)
        } else {
            (&self.large_store_op, self.large_store_bw)
        };
        hetflow_sim::time::secs(op.sample(rng) + bytes as f64 / bw)
    }
}

/// One endpoint registration: a worker pool plus the topics routed to it.
pub struct EndpointSpec {
    /// The pool this endpoint manages.
    pub pool: WorkerPoolConfig,
    /// Task topics executed here.
    pub topics: Vec<&'static str>,
    /// The endpoint's outbound connection to the cloud. While offline,
    /// the cloud *holds* tasks and the endpoint holds results —
    /// §IV-A3's robustness property.
    pub connectivity: crate::reliability::Connectivity,
}

impl EndpointSpec {
    /// An endpoint with a permanently-connected link.
    pub fn reliable(pool: WorkerPoolConfig, topics: Vec<&'static str>) -> Self {
        EndpointSpec { pool, topics, connectivity: crate::reliability::Connectivity::always_on() }
    }
}

struct Inner {
    sim: Sim,
    params: FnXParams,
    rng: RefCell<SimRng>,
    route: BTreeMap<String, usize>,
    pools: Vec<WorkerPool>,
    connectivity: Vec<crate::reliability::Connectivity>,
    retries: Vec<RetryPolicies>,
    results: Sender<TaskResult>,
    tracer: Tracer,
    submitted: Cell<u64>,
    returned: Cell<u64>,
    timed_out: Cell<u64>,
    payload_bytes: Cell<u64>,
}

/// The FnX executor: routes tasks through the cloud to endpoints.
#[derive(Clone)]
pub struct FnXExecutor {
    inner: Rc<Inner>,
}

impl FnXExecutor {
    /// Builds the executor, spawning one worker pool per endpoint.
    /// Completed results are delivered on `results`.
    pub fn new(
        sim: &Sim,
        params: FnXParams,
        endpoints: Vec<EndpointSpec>,
        results: Sender<TaskResult>,
        rng: SimRng,
        tracer: Tracer,
    ) -> FnXExecutor {
        let mut route = BTreeMap::new();
        let mut pools = Vec::new();
        let mut connectivity = Vec::new();
        let mut retries = Vec::new();
        let mut pool_streams = Vec::new();
        for (i, ep) in endpoints.into_iter().enumerate() {
            for topic in &ep.topics {
                let prev = route.insert((*topic).to_owned(), i);
                assert!(prev.is_none(), "topic {topic} routed to two endpoints");
            }
            let (pool_res_tx, pool_res_rx) = channel::<TaskResult>();
            retries.push(ep.pool.retry.clone());
            let pool =
                WorkerPool::spawn(sim, ep.pool, pool_res_tx, &rng.substream(i as u64), tracer.clone());
            pools.push(pool);
            connectivity.push(ep.connectivity);
            pool_streams.push(pool_res_rx);
        }
        let inner = Rc::new(Inner {
            sim: sim.clone(),
            params,
            rng: RefCell::new(rng.substream(u64::MAX)),
            route,
            pools,
            connectivity,
            retries,
            results,
            tracer,
            submitted: Cell::new(0),
            returned: Cell::new(0),
            timed_out: Cell::new(0),
            payload_bytes: Cell::new(0),
        });
        // One return-path actor per endpoint.
        for (i, rx) in pool_streams.into_iter().enumerate() {
            let inner2 = Rc::clone(&inner);
            sim.spawn(async move {
                while let Some(result) = rx.recv().await {
                    let inner3 = Rc::clone(&inner2);
                    inner2.sim.spawn(async move {
                        FnXExecutor::return_result(inner3, result, i).await;
                    });
                }
            });
        }
        FnXExecutor { inner }
    }

    /// Endpoint worker pools (for utilization metrics).
    pub fn pools(&self) -> &[WorkerPool] {
        &self.inner.pools
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.get()
    }

    /// Results returned so far.
    pub fn returned(&self) -> u64 {
        self.inner.returned.get()
    }

    /// Total payload bytes moved through the cloud (both directions).
    pub fn cloud_payload_bytes(&self) -> u64 {
        self.inner.payload_bytes.get()
    }

    /// Tasks failed by the delivery deadline (`RetryPolicy::timeout`).
    pub fn timed_out(&self) -> u64 {
        self.inner.timed_out.get()
    }

    /// Races the delivery against the topic's `RetryPolicy::timeout`.
    /// A task stuck in the cloud past its deadline (e.g. behind an
    /// endpoint outage) fails with `TaskError::Timeout` instead of
    /// waiting forever; the failure rides the normal result channel.
    async fn deliver(inner: Rc<Inner>, task: TaskSpec, endpoint: usize) {
        let deadline = inner.retries[endpoint].policy_for(&task.topic).timeout;
        let Some(deadline) = deadline else {
            Self::deliver_inner(inner, task, endpoint).await;
            return;
        };
        let id = task.id;
        let topic = task.topic.clone();
        let mut timing = task.timing;
        let input_bytes = task.args.iter().map(Arg::data_bytes).sum();
        let attempt = Box::pin(Self::deliver_inner(Rc::clone(&inner), task, endpoint));
        if inner.sim.timeout(deadline, attempt).await.is_err() {
            let now = inner.sim.now();
            let actor = format!("fnx/ep{endpoint}");
            inner.tracer.emit(now, &actor, kinds::TASK_TIMEOUT, id, deadline.as_secs_f64());
            timing.server_result_received = Some(now);
            inner.timed_out.set(inner.timed_out.get() + 1);
            inner.returned.set(inner.returned.get() + 1);
            let result = TaskResult {
                id,
                topic,
                output: Arg::inline((), 0),
                input_bytes,
                report: WorkerReport::default(),
                timing,
                site: inner.pools[endpoint].site(),
                worker: actor,
                outcome: TaskOutcome::Failed(TaskError::Timeout { after: deadline }),
            };
            let _ = inner.results.send_now(result);
        }
    }

    async fn deliver_inner(inner: Rc<Inner>, task: TaskSpec, endpoint: usize) {
        let bytes = task.wire_bytes();
        // Cloud stores the payload, forwards the invocation, endpoint
        // fetches the payload. While the endpoint is offline the cloud
        // simply holds the task (§IV-A3).
        let put = inner.params.store_op(&mut inner.rng.borrow_mut(), bytes);
        inner.sim.sleep(put).await;
        inner.connectivity[endpoint].wait_online().await;
        let fwd = inner.params.forward_latency.sample_secs(&mut inner.rng.borrow_mut());
        inner.sim.sleep(fwd).await;
        let get = inner.params.store_op(&mut inner.rng.borrow_mut(), bytes);
        inner.sim.sleep(get).await;
        inner.payload_bytes.set(inner.payload_bytes.get() + 2 * bytes);
        let _ = inner.pools[endpoint].tasks.send_now(task);
    }

    async fn return_result(inner: Rc<Inner>, mut result: TaskResult, endpoint: usize) {
        let bytes = result.wire_bytes();
        // The endpoint buffers the result while offline, then uploads;
        // the cloud notifies the client, which fetches it.
        inner.connectivity[endpoint].wait_online().await;
        let put = inner.params.store_op(&mut inner.rng.borrow_mut(), bytes);
        inner.sim.sleep(put).await;
        let lat = inner.params.result_latency.sample_secs(&mut inner.rng.borrow_mut());
        inner.sim.sleep(lat).await;
        let get = inner.params.store_op(&mut inner.rng.borrow_mut(), bytes);
        inner.sim.sleep(get).await;
        inner.payload_bytes.set(inner.payload_bytes.get() + 2 * bytes);
        result.timing.server_result_received = Some(inner.sim.now());
        inner.returned.set(inner.returned.get() + 1);
        let _ = inner.results.send_now(result);
    }
}

impl Fabric for FnXExecutor {
    fn submit(&self, mut task: TaskSpec) -> Pin<Box<dyn Future<Output = ()> + '_>> {
        Box::pin(async move {
            let inner = &self.inner;
            let bytes = task.wire_bytes();
            assert!(
                bytes <= inner.params.payload_cap,
                "FnX payload {} bytes exceeds the {} byte cap (topic {}): large data \
                 must be passed by reference",
                bytes,
                inner.params.payload_cap,
                task.topic,
            );
            let &endpoint = inner
                .route
                .get(&task.topic)
                // hetlint: allow(r5) — unrouted topic is a deployment wiring bug, not a runtime fault
                .unwrap_or_else(|| panic!("no endpoint registered for topic {}", task.topic));
            task.timing.dispatched = Some(inner.sim.now());
            // The client pays the HTTPS round trip; the rest of the
            // journey proceeds in the cloud.
            let https = inner.params.https_latency.sample_secs(&mut inner.rng.borrow_mut());
            inner.sim.sleep(https).await;
            inner.submitted.set(inner.submitted.get() + 1);
            let inner2 = Rc::clone(inner);
            inner.sim.spawn(async move {
                FnXExecutor::deliver(inner2, task, endpoint).await;
            });
        })
    }

    fn label(&self) -> &'static str {
        "fnx"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_store::SiteId;
    use hetflow_sim::Receiver;

    fn fixed_params() -> FnXParams {
        FnXParams {
            https_latency: Dist::Constant(0.1),
            small_store_op: Dist::Constant(0.04),
            small_store_bw: 4.0e4,
            large_store_op: Dist::Constant(0.2),
            large_store_bw: 8.0e5,
            small_threshold: 20_000,
            payload_cap: 10_000_000,
            forward_latency: Dist::Constant(0.05),
            result_latency: Dist::Constant(0.06),
        }
    }

    fn setup(workers: usize) -> (Sim, FnXExecutor, Receiver<TaskResult>) {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let exec = FnXExecutor::new(
            &sim,
            fixed_params(),
            vec![EndpointSpec::reliable(
                WorkerPoolConfig::bare(SiteId(0), "theta", workers),
                vec!["noop", "unit"],
            )],
            res_tx,
            SimRng::from_seed(5),
            Tracer::disabled(),
        );
        (sim, exec, res_rx)
    }

    #[test]
    fn submit_pays_only_https() {
        let (sim, exec, _res) = setup(1);
        let s = sim.clone();
        let e = exec.clone();
        let h = sim.spawn(async move {
            e.submit(TaskSpec::noop(0, 1_000)).await;
            s.now().as_secs_f64()
        });
        let t = sim.block_on(h);
        assert!((t - 0.1).abs() < 1e-9, "dispatch cost = HTTPS RTT, got {t}");
    }

    #[test]
    fn task_executes_and_result_returns() {
        let (sim, exec, res_rx) = setup(1);
        let e = exec.clone();
        sim.spawn(async move {
            e.submit(TaskSpec::noop(7, 1_000)).await;
        });
        sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.id, 7);
        assert!(r.timing.worker_started.is_some());
        assert!(r.timing.server_result_received.is_some());
        assert_eq!(exec.submitted(), 1);
        assert_eq!(exec.returned(), 1);
    }

    #[test]
    fn larger_payloads_cost_more_cloud_time() {
        // Compare the dispatched→worker_started span for 500 B-ish vs
        // 1 MB payloads: the cloud path dominates, reproducing Fig. 3's
        // shape.
        let span_for = |payload: u64| {
            let (sim, exec, res_rx) = setup(1);
            let e = exec.clone();
            sim.spawn(async move {
                e.submit(TaskSpec::noop(0, payload)).await;
            });
            sim.run();
            let r = &res_rx.drain_now()[0];
            r.timing.server_to_worker().unwrap().as_secs_f64()
        };
        let small = span_for(500); // proxy-sized
        let mid = span_for(10_000);
        let large = span_for(1_000_000);
        assert!(mid / small > 1.8, "10kB/proxy ratio: {}", mid / small);
        assert!(mid / small < 4.0, "10kB/proxy ratio: {}", mid / small);
        assert!(large / small > 7.0, "1MB/proxy ratio: {}", large / small);
        assert!(large / small < 16.0, "1MB/proxy ratio: {}", large / small);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversize_payload_rejected() {
        let (sim, exec, _res) = setup(1);
        let e = exec.clone();
        let h = sim.spawn(async move {
            e.submit(TaskSpec::noop(0, 50_000_000)).await;
        });
        sim.block_on(h);
    }

    #[test]
    #[should_panic(expected = "no endpoint registered")]
    fn unrouted_topic_rejected() {
        let (sim, exec, _res) = setup(1);
        let e = exec.clone();
        let h = sim.spawn(async move {
            let t = TaskSpec::new(0, "mystery", vec![], Rc::new(|_| crate::task::TaskWork::noop()));
            e.submit(t).await;
        });
        sim.block_on(h);
    }

    #[test]
    fn concurrent_submissions_pipeline() {
        // The cloud path must not serialize independent tasks.
        let (sim, exec, res_rx) = setup(4);
        let e = exec.clone();
        sim.spawn(async move {
            for i in 0..4 {
                e.submit(TaskSpec::noop(i, 1_000)).await;
            }
        });
        let r = sim.run();
        assert_eq!(res_rx.drain_now().len(), 4);
        // 4 sequential submissions pay 4×0.1s HTTPS; the rest overlaps.
        // Full serial execution would take > 4×(0.1+0.04+0.05+0.04+…);
        // ensure we finish well under that.
        assert!(r.end.as_secs_f64() < 1.2, "end {}", r.end);
    }

    #[test]
    fn delivery_timeout_fails_tasks_stuck_behind_outage() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let mut pool = WorkerPoolConfig::bare(SiteId(0), "theta", 1);
        pool.retry = RetryPolicies::default().with_topic(
            "noop",
            crate::reliability::RetryPolicy {
                timeout: Some(std::time::Duration::from_secs(30)),
                ..Default::default()
            },
        );
        let connectivity = crate::reliability::Connectivity::always_on();
        connectivity.set_online(false); // offline before any delivery
        let tracer = Tracer::enabled();
        let exec = FnXExecutor::new(
            &sim,
            fixed_params(),
            vec![EndpointSpec { pool, topics: vec!["noop"], connectivity }],
            res_tx,
            SimRng::from_seed(5),
            tracer.clone(),
        );
        let e = exec.clone();
        sim.spawn(async move {
            e.submit(TaskSpec::noop(3, 1_000)).await;
        });
        let r = sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 1);
        let res = &results[0];
        assert!(res.is_failed());
        assert_eq!(
            res.outcome.error(),
            Some(&TaskError::Timeout { after: std::time::Duration::from_secs(30) })
        );
        assert_eq!(res.id, 3);
        assert!(res.timing.worker_started.is_none(), "task never reached a worker");
        assert_eq!(exec.timed_out(), 1);
        assert_eq!(exec.returned(), 1);
        assert_eq!(tracer.events_of_kind(kinds::TASK_TIMEOUT).len(), 1);
        // The deadline — not the (never-ending) outage — bounds the run:
        // 0.1 s HTTPS + 30 s deadline.
        assert!(r.end.as_secs_f64() < 31.0, "end {}", r.end);
    }

    #[test]
    fn topic_routing_to_correct_pool() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let exec = FnXExecutor::new(
            &sim,
            fixed_params(),
            vec![
                EndpointSpec::reliable(WorkerPoolConfig::bare(SiteId(0), "cpu", 1), vec!["simulate"]),
                EndpointSpec::reliable(WorkerPoolConfig::bare(SiteId(1), "gpu", 1), vec!["train"]),
            ],
            res_tx,
            SimRng::from_seed(5),
            Tracer::disabled(),
        );
        let e = exec.clone();
        sim.spawn(async move {
            let mk = |id, topic: &str| {
                TaskSpec::new(id, topic, vec![], Rc::new(|_| crate::task::TaskWork::noop()))
            };
            e.submit(mk(0, "simulate")).await;
            e.submit(mk(1, "train")).await;
        });
        sim.run();
        let mut results = res_rx.drain_now();
        results.sort_by_key(|r| r.id);
        assert_eq!(results[0].worker, "cpu/0");
        assert_eq!(results[0].site, SiteId(0));
        assert_eq!(results[1].worker, "gpu/0");
        assert_eq!(results[1].site, SiteId(1));
    }
}
