//! FnX — the federated FaaS fabric (the paper's FuncX, §IV-B).
//!
//! Task submissions travel through a cloud-hosted service: the client
//! makes an HTTPS call; the cloud stores the payload (a fast KV tier for
//! payloads ≤ 20 kB, an object store above that — FuncX's
//! ElastiCache/S3 split, §V-C1) and forwards the task to the endpoint's
//! outbound connection; the endpoint fetches the payload and hands the
//! task to a worker. Results retrace the path. Payloads above 10 MB are
//! rejected, which is why large data must move via ProxyStore.
//!
//! Effective payload throughput through the cloud tiers is low (API
//! chunking, base64/pickle inflation); values are calibrated so the
//! server→worker communication reductions of Fig. 3 (~2–3× at 10 kB,
//! ~10× at 1 MB when proxied) are reproduced.

use crate::fabric::Fabric;
use crate::health::{ReliabilityLayer, ReliabilityPolicies, TimeoutVerdict, Verdict};
use crate::reliability::chaos::ChaosTargets;
use crate::reliability::overload::{AdmissionConfig, AdmissionController, BackpressureGate};
use crate::reliability::{Knob, RetryPolicies};
use crate::task::{Arg, TaskError, TaskOutcome, TaskResult, TaskSpec, WorkerReport};
use crate::worker::{WorkerPool, WorkerPoolConfig};
use hetflow_sim::{
    channel, trace_kinds as kinds, Dist, Offered, OverflowPolicy, Sender, Sim, SimRng, Symbol,
    SymbolMap, Tracer,
};
use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::time::Duration;

/// Scales a sampled delay by a chaos knob, skipping the multiply when
/// the knob is neutral so untouched knobs change nothing.
fn scaled(d: Duration, knob: &Knob) -> Duration {
    let f = knob.get();
    if f != 1.0 {
        d.mul_f64(f.max(0.0))
    } else {
        d
    }
}

/// Tunables of the cloud FaaS model.
#[derive(Clone, Debug)]
pub struct FnXParams {
    /// Client→cloud HTTPS request latency (the dispatch cost the paper
    /// reports as "a median of 100 ms", §V-D3).
    pub https_latency: Dist,
    /// Fast-KV tier (ElastiCache) per-operation latency.
    pub small_store_op: Dist,
    /// Fast-KV tier effective payload throughput, bytes/s.
    pub small_store_bw: f64,
    /// Object-store tier (S3) per-operation latency.
    pub large_store_op: Dist,
    /// Object-store tier effective payload throughput, bytes/s.
    pub large_store_bw: f64,
    /// Payloads at or below this use the fast-KV tier (20 kB in FuncX).
    pub small_threshold: u64,
    /// Hard payload cap (10 MB in FuncX); larger submissions panic.
    pub payload_cap: u64,
    /// Cloud→endpoint forwarding latency (outbound AMQP connection).
    pub forward_latency: Dist,
    /// Cloud→client result delivery latency.
    pub result_latency: Dist,
}

impl Default for FnXParams {
    fn default() -> Self {
        FnXParams {
            https_latency: Dist::LogNormal { median: 0.09, sigma: 0.35 },
            small_store_op: Dist::LogNormal { median: 0.04, sigma: 0.3 },
            small_store_bw: 4.0e4,
            large_store_op: Dist::LogNormal { median: 0.2, sigma: 0.3 },
            large_store_bw: 8.0e5,
            small_threshold: 20_000,
            payload_cap: 10_000_000,
            forward_latency: Dist::LogNormal { median: 0.05, sigma: 0.3 },
            result_latency: Dist::LogNormal { median: 0.06, sigma: 0.3 },
        }
    }
}

impl FnXParams {
    /// Cost of one cloud-store put or get for a payload of `bytes`.
    fn store_op(&self, rng: &mut SimRng, bytes: u64) -> std::time::Duration {
        let (op, bw) = if bytes <= self.small_threshold {
            (&self.small_store_op, self.small_store_bw)
        } else {
            (&self.large_store_op, self.large_store_bw)
        };
        hetflow_sim::time::secs(op.sample(rng) + bytes as f64 / bw)
    }
}

/// One endpoint registration: a worker pool plus the topics routed to it.
pub struct EndpointSpec {
    /// The pool this endpoint manages.
    pub pool: WorkerPoolConfig,
    /// Task topics executed here.
    pub topics: Vec<&'static str>,
    /// The endpoint's outbound connection to the cloud. While offline,
    /// the cloud *holds* tasks and the endpoint holds results —
    /// §IV-A3's robustness property.
    pub connectivity: crate::reliability::Connectivity,
}

impl EndpointSpec {
    /// An endpoint with a permanently-connected link.
    pub fn reliable(pool: WorkerPoolConfig, topics: Vec<&'static str>) -> Self {
        EndpointSpec { pool, topics, connectivity: crate::reliability::Connectivity::always_on() }
    }
}

struct Inner {
    sim: Sim,
    params: FnXParams,
    /// Pre-interned `"fnx/ep{i}"` trace actors, one per endpoint.
    actors: Vec<Symbol>,
    rng: RefCell<SimRng>,
    health: ReliabilityLayer,
    pools: Vec<WorkerPool>,
    connectivity: Vec<crate::reliability::Connectivity>,
    retries: Vec<RetryPolicies>,
    /// Per-endpoint link-degradation dials (chaos-engine targets).
    brownout: Vec<Knob>,
    /// Cloud-service degradation dial (chaos-engine target).
    cloud: Knob,
    /// Per-endpoint pool-queue bound and overflow policy (0 = unbounded).
    bounds: Vec<(usize, OverflowPolicy)>,
    /// Token-bucket/in-flight admission, consulted before the breaker
    /// layer. Only topics with an enabled config appear in
    /// `admission_cfgs`, so unconfigured topics pay nothing.
    admission: AdmissionController,
    admission_cfgs: SymbolMap<AdmissionConfig>,
    /// Per-topic depth watermark gate; empty when no topic configures
    /// backpressure.
    gate: BackpressureGate,
    /// Primary endpoint per routed topic (attribution for tasks shed
    /// before an endpoint is picked).
    primary: SymbolMap<usize>,
    results: Sender<TaskResult>,
    tracer: Tracer,
    submitted: Cell<u64>,
    returned: Cell<u64>,
    timed_out: Cell<u64>,
    shed: Cell<u64>,
    payload_bytes: Cell<u64>,
}

/// The FnX executor: routes tasks through the cloud to endpoints.
#[derive(Clone)]
pub struct FnXExecutor {
    inner: Rc<Inner>,
}

impl FnXExecutor {
    /// Builds the executor, spawning one worker pool per endpoint.
    /// Completed results are delivered on `results`. Reliability
    /// mechanisms (breakers, hedging, rerouting) are disabled — see
    /// [`FnXExecutor::with_reliability`].
    pub fn new(
        sim: &Sim,
        params: FnXParams,
        endpoints: Vec<EndpointSpec>,
        results: Sender<TaskResult>,
        rng: SimRng,
        tracer: Tracer,
    ) -> FnXExecutor {
        Self::with_reliability(
            sim,
            params,
            endpoints,
            results,
            rng,
            tracer,
            ReliabilityPolicies::default(),
        )
    }

    /// Builds the executor with an active [`ReliabilityLayer`]: a topic
    /// registered on several endpoints fails over (the first
    /// registration is the primary, later ones are failover
    /// candidates), breakers steer dispatches away from unhealthy
    /// endpoints, and hedged/rerouted copies deliver exactly once.
    pub fn with_reliability(
        sim: &Sim,
        params: FnXParams,
        endpoints: Vec<EndpointSpec>,
        results: Sender<TaskResult>,
        rng: SimRng,
        tracer: Tracer,
        policies: ReliabilityPolicies,
    ) -> FnXExecutor {
        let mut route: SymbolMap<Vec<usize>> = SymbolMap::new();
        let mut primary: SymbolMap<usize> = SymbolMap::new();
        let mut pools = Vec::new();
        let mut connectivity = Vec::new();
        let mut retries = Vec::new();
        let mut brownout = Vec::new();
        let mut bounds = Vec::new();
        let mut pool_streams = Vec::new();
        for (i, ep) in endpoints.into_iter().enumerate() {
            for topic in &ep.topics {
                let sym = Symbol::intern(topic);
                let targets = route.get_or_insert_with(sym, Vec::new);
                if targets.is_empty() {
                    primary.insert(sym, i);
                }
                targets.push(i);
            }
            let (pool_res_tx, pool_res_rx) = channel::<TaskResult>();
            retries.push(ep.pool.retry.clone());
            bounds.push((ep.pool.queue_capacity, ep.pool.overflow));
            let pool =
                WorkerPool::spawn(sim, ep.pool, pool_res_tx, &rng.substream(i as u64), tracer.clone());
            pools.push(pool);
            connectivity.push(ep.connectivity);
            brownout.push(Knob::new(1.0));
            pool_streams.push(pool_res_rx);
        }
        // Overload protection: admission configs and backpressure
        // watermarks are read off the policies before the layer takes
        // them. Topics with all-zero configs register nothing.
        let admission = AdmissionController::new(sim);
        let mut admission_cfgs: SymbolMap<AdmissionConfig> = SymbolMap::new();
        let gate = BackpressureGate::new(sim, tracer.clone(), "fnx");
        for topic in primary.keys() {
            let policy = policies.policy_for(topic);
            if policy.admission.enabled() {
                admission_cfgs.insert(topic, policy.admission.clone());
            }
            gate.register(topic, &policy.backpressure);
        }
        let health =
            ReliabilityLayer::new(sim, tracer.clone(), "fnx", policies, route, &connectivity);
        let actors =
            (0..pools.len()).map(|i| Symbol::intern(&format!("fnx/ep{i}"))).collect();
        let inner = Rc::new(Inner {
            sim: sim.clone(),
            params,
            actors,
            rng: RefCell::new(rng.substream(u64::MAX)),
            health,
            pools,
            connectivity,
            retries,
            brownout,
            cloud: Knob::new(1.0),
            bounds,
            admission,
            admission_cfgs,
            gate,
            primary,
            results,
            tracer,
            submitted: Cell::new(0),
            returned: Cell::new(0),
            timed_out: Cell::new(0),
            shed: Cell::new(0),
            payload_bytes: Cell::new(0),
        });
        // One return-path actor per endpoint.
        for (i, rx) in pool_streams.into_iter().enumerate() {
            let inner2 = Rc::clone(&inner);
            sim.spawn_detached(async move {
                while let Some(result) = rx.recv().await {
                    let inner3 = Rc::clone(&inner2);
                    inner2.sim.spawn_detached(async move {
                        FnXExecutor::return_result(inner3, result, i).await;
                    });
                }
            });
        }
        FnXExecutor { inner }
    }

    /// Endpoint worker pools (for utilization metrics).
    pub fn pools(&self) -> &[WorkerPool] {
        &self.inner.pools
    }

    /// The reliability layer (breaker state, hedge/reroute counters).
    pub fn health(&self) -> ReliabilityLayer {
        self.inner.health.clone()
    }

    /// The chaos-engine handles of this deployment: endpoint
    /// connectivity, per-pool pace/crash dials, per-endpoint link
    /// brownout dials, and the cloud-service degradation dial. The
    /// storm target stays `None` here — the deployment layer owns the
    /// `Rc<dyn Fabric>` handle and wires it in itself.
    pub fn chaos_targets(&self) -> ChaosTargets {
        ChaosTargets {
            connectivity: self.inner.connectivity.clone(),
            pace: self.inner.pools.iter().map(WorkerPool::pace_knob).collect(),
            crash: self.inner.pools.iter().map(WorkerPool::crash_knob).collect(),
            brownout: self.inner.brownout.clone(),
            cloud: Some(self.inner.cloud.clone()),
            storm: None,
        }
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.get()
    }

    /// Results returned so far.
    pub fn returned(&self) -> u64 {
        self.inner.returned.get()
    }

    /// Total payload bytes moved through the cloud (both directions).
    pub fn cloud_payload_bytes(&self) -> u64 {
        self.inner.payload_bytes.get()
    }

    /// Tasks failed by the delivery deadline (`RetryPolicy::timeout`).
    pub fn timed_out(&self) -> u64 {
        self.inner.timed_out.get()
    }

    /// Tasks dropped by overload protection (admission refusals plus
    /// queue-overflow evictions) — each still delivered a terminal
    /// [`TaskOutcome::Shed`] result.
    pub fn shed(&self) -> u64 {
        self.inner.shed.get()
    }

    /// The admission controller (in-flight/rejection counters).
    pub fn admission(&self) -> &AdmissionController {
        &self.inner.admission
    }

    /// Balances the overload accounting when a task reaches its one
    /// terminal outcome: the topic's in-fabric depth drops (possibly
    /// reopening the backpressure gate) and its admission slot frees.
    fn release(inner: &Inner, topic: Symbol) {
        inner.gate.on_exit(topic);
        inner.admission.on_done(topic);
    }

    /// Delivers the terminal [`TaskOutcome::Shed`] result for a task
    /// dropped by overload protection. `load` is the queue depth or
    /// in-flight count observed at the shed decision (the trace value).
    fn shed_result(inner: &Inner, spec: TaskSpec, endpoint: usize, hedges: u32, reroutes: u32, load: f64) {
        let now = inner.sim.now();
        let actor = inner.actors[endpoint];
        inner.tracer.emit(now, actor, kinds::TASK_SHED, spec.id, load);
        let mut timing = spec.timing;
        timing.server_result_received = Some(now);
        inner.shed.set(inner.shed.get() + 1);
        inner.returned.set(inner.returned.get() + 1);
        let result = TaskResult {
            id: spec.id,
            topic: spec.topic,
            output: Arg::empty(),
            input_bytes: spec.args.iter().map(Arg::data_bytes).sum(),
            report: WorkerReport { hedges, reroutes, ..WorkerReport::default() },
            timing,
            site: inner.pools[endpoint].site(),
            worker: actor,
            outcome: TaskOutcome::Shed,
        };
        let _ = inner.results.send_now(result); // hetlint: allow(r15) — teardown-tolerant: the campaign driver may have dropped the results receiver
    }

    /// Races the delivery against the topic's `RetryPolicy::timeout`.
    /// A task stuck in the cloud past its deadline (e.g. behind an
    /// endpoint outage) is handed to the reliability layer, which
    /// either reroutes it to another endpoint (within the topic's
    /// `max_reroutes` budget) or fails it with `TaskError::Timeout`;
    /// the failure rides the normal result channel.
    async fn deliver(inner: Rc<Inner>, task: TaskSpec, endpoint: usize) {
        let deadline = inner.retries[endpoint].policy_for(task.topic).timeout;
        let Some(deadline) = deadline else {
            Self::deliver_inner(inner, task, endpoint).await;
            return;
        };
        let id = task.id;
        let topic = task.topic;
        let mut timing = task.timing;
        let input_bytes = task.args.iter().map(Arg::data_bytes).sum();
        let attempt = Box::pin(Self::deliver_inner(Rc::clone(&inner), task, endpoint));
        if inner.sim.timeout(deadline, attempt).await.is_err() {
            match inner.health.on_timeout(endpoint, id, topic) {
                TimeoutVerdict::Reroute { spec, to } => {
                    let inner2 = Rc::clone(&inner);
                    // Boxed to break the deliver → deliver type cycle.
                    let redo: Pin<Box<dyn Future<Output = ()>>> =
                        Box::pin(Self::deliver(inner2, *spec, to));
                    inner.sim.spawn_detached(redo);
                }
                TimeoutVerdict::Suppress => {}
                TimeoutVerdict::Fail => {
                    let now = inner.sim.now();
                    let actor = inner.actors[endpoint];
                    inner.tracer.emit(now, actor, kinds::TASK_TIMEOUT, id, deadline.as_secs_f64());
                    Self::release(&inner, topic);
                    timing.server_result_received = Some(now);
                    inner.timed_out.set(inner.timed_out.get() + 1);
                    inner.returned.set(inner.returned.get() + 1);
                    let result = TaskResult {
                        id,
                        topic,
                        output: Arg::empty(),
                        input_bytes,
                        report: WorkerReport::default(),
                        timing,
                        site: inner.pools[endpoint].site(),
                        worker: actor,
                        outcome: TaskOutcome::Failed(TaskError::Timeout { after: deadline }),
                    };
                    let _ = inner.results.send_now(result); // hetlint: allow(r15) — teardown-tolerant: the campaign driver may have dropped the results receiver
                }
            }
        }
    }

    async fn deliver_inner(inner: Rc<Inner>, task: TaskSpec, endpoint: usize) {
        let bytes = task.wire_bytes();
        // Cloud stores the payload, forwards the invocation, endpoint
        // fetches the payload. While the endpoint is offline the cloud
        // simply holds the task (§IV-A3). The cloud knob degrades the
        // service's own operations; the endpoint's brownout knob
        // degrades its link legs.
        let put = inner.params.store_op(&mut inner.rng.borrow_mut(), bytes);
        inner.sim.sleep(scaled(put, &inner.cloud)).await;
        inner.connectivity[endpoint].wait_online().await;
        let fwd = inner.params.forward_latency.sample_secs(&mut inner.rng.borrow_mut());
        inner.sim.sleep(scaled(scaled(fwd, &inner.cloud), &inner.brownout[endpoint])).await;
        let get = inner.params.store_op(&mut inner.rng.borrow_mut(), bytes);
        inner.sim.sleep(scaled(scaled(get, &inner.cloud), &inner.brownout[endpoint])).await;
        inner.payload_bytes.set(inner.payload_bytes.get() + 2 * bytes);
        let (capacity, overflow) = inner.bounds[endpoint];
        match inner.pools[endpoint].tasks.offer(task, capacity, overflow, |t| u64::from(t.priority))
        {
            Offered::Accepted => {}
            Offered::Closed(_) => {} // experiment torn down
            Offered::Displaced(victim) => {
                // A shed copy is a failure for arbitration purposes: if
                // a hedge/reroute sibling is still live the loss is
                // silent; otherwise the Shed outcome is the task's one
                // terminal result.
                let topic = victim.topic;
                match inner.health.on_result(endpoint, victim.id, topic, true, 0.0) {
                    Verdict::Deliver { hedges, reroutes } => {
                        Self::shed_result(&inner, victim, endpoint, hedges, reroutes, capacity as f64);
                        Self::release(&inner, topic);
                    }
                    Verdict::Suppress => {}
                }
            }
        }
    }

    async fn return_result(inner: Rc<Inner>, mut result: TaskResult, endpoint: usize) {
        let bytes = result.wire_bytes();
        // The endpoint buffers the result while offline, then uploads;
        // the cloud notifies the client, which fetches it.
        inner.connectivity[endpoint].wait_online().await;
        let put = inner.params.store_op(&mut inner.rng.borrow_mut(), bytes);
        inner.sim.sleep(scaled(scaled(put, &inner.cloud), &inner.brownout[endpoint])).await;
        let lat = inner.params.result_latency.sample_secs(&mut inner.rng.borrow_mut());
        inner.sim.sleep(scaled(lat, &inner.cloud)).await;
        let get = inner.params.store_op(&mut inner.rng.borrow_mut(), bytes);
        inner.sim.sleep(scaled(get, &inner.cloud)).await;
        inner.payload_bytes.set(inner.payload_bytes.get() + 2 * bytes);
        // Exactly-once arbitration happens here, *after* the full
        // return path: a winner stuck behind a dead connection never
        // reaches this point, so a healthy hedge copy takes the race.
        let waste = result.report.compute_time.as_secs_f64()
            + result.report.wasted_time.as_secs_f64();
        match inner.health.on_result(
            endpoint,
            result.id,
            result.topic,
            result.is_failed(),
            waste,
        ) {
            Verdict::Deliver { hedges, reroutes } => {
                Self::release(&inner, result.topic);
                result.report.hedges = hedges;
                result.report.reroutes = reroutes;
                result.timing.server_result_received = Some(inner.sim.now());
                inner.returned.set(inner.returned.get() + 1);
                let _ = inner.results.send_now(result); // hetlint: allow(r15) — teardown-tolerant: the campaign driver may have dropped the results receiver
            }
            Verdict::Suppress => {}
        }
    }
}

impl Fabric for FnXExecutor {
    fn submit(&self, mut task: TaskSpec) -> Pin<Box<dyn Future<Output = ()> + '_>> {
        Box::pin(async move {
            let inner = &self.inner;
            let bytes = task.wire_bytes();
            assert!(
                bytes <= inner.params.payload_cap,
                "FnX payload {} bytes exceeds the {} byte cap (topic {}): large data \
                 must be passed by reference",
                bytes,
                inner.params.payload_cap,
                task.topic,
            );
            task.timing.dispatched = Some(inner.sim.now());
            // Admission control: a refused submission still pays the
            // HTTPS round trip (the cloud rejects after the call) and
            // resolves to a terminal Shed outcome; it never reaches the
            // breaker layer, so no in-flight tracking to unwind.
            if let Some(cfg) = inner.admission_cfgs.get(task.topic) {
                if !inner.admission.try_admit(task.topic, cfg) {
                    let https =
                        inner.params.https_latency.sample_secs(&mut inner.rng.borrow_mut());
                    inner.sim.sleep(https).await;
                    inner.submitted.set(inner.submitted.get() + 1);
                    let ep = inner.primary.get(task.topic).copied().unwrap_or(0);
                    let load = inner.admission.in_flight(task.topic) as f64;
                    Self::shed_result(inner, task, ep, 0, 0, load);
                    return;
                }
            }
            inner.gate.on_enter(task.topic);
            // Register the dispatch with the reliability layer, which
            // picks the endpoint (breaker-aware when configured; the
            // primary otherwise).
            let endpoint = inner
                .health
                .admit(&task)
                // hetlint: allow(r5) — unrouted topic is a deployment wiring bug, not a runtime fault
                .unwrap_or_else(|| panic!("no endpoint registered for topic {}", task.topic));
            // The client pays the HTTPS round trip; the rest of the
            // journey proceeds in the cloud.
            let https = inner.params.https_latency.sample_secs(&mut inner.rng.borrow_mut());
            inner.sim.sleep(https).await;
            inner.submitted.set(inner.submitted.get() + 1);
            let id = task.id;
            let topic = task.topic;
            let input_bytes = task.args.iter().map(Arg::data_bytes).sum();
            let timing = task.timing;
            // Hedge watchdog: after the topic's quantile-based delay,
            // re-issue straggling tasks to another endpoint (first
            // result wins; the layer cancels the loser).
            if let Some(delay) = inner.health.hedge_delay(topic) {
                let inner2 = Rc::clone(inner);
                inner.sim.spawn_detached(async move {
                    loop {
                        inner2.sim.sleep(delay).await;
                        let Some((spec, to)) = inner2.health.try_hedge(id, topic) else {
                            break;
                        };
                        let inner3 = Rc::clone(&inner2);
                        inner2.sim.spawn_detached(async move {
                            FnXExecutor::deliver(inner3, spec, to).await;
                        });
                    }
                });
            }
            // Deadline watchdog: the hard round-trip backstop — a task
            // with no terminal outcome by the deadline is failed here;
            // copies still in flight are cancelled as they surface.
            if let Some(dl) = inner.health.deadline(topic) {
                let inner2 = Rc::clone(inner);
                inner.sim.spawn_detached(async move {
                    inner2.sim.sleep(dl).await;
                    if inner2.health.expire(id) {
                        let now = inner2.sim.now();
                        let actor = inner2.actors[endpoint];
                        inner2.tracer.emit(now, actor, kinds::TASK_TIMEOUT, id, dl.as_secs_f64());
                        Self::release(&inner2, topic);
                        let mut timing = timing;
                        timing.server_result_received = Some(now);
                        inner2.timed_out.set(inner2.timed_out.get() + 1);
                        inner2.returned.set(inner2.returned.get() + 1);
                        let result = TaskResult {
                            id,
                            topic,
                            output: Arg::empty(),
                            input_bytes,
                            report: WorkerReport::default(),
                            timing,
                            site: inner2.pools[endpoint].site(),
                            worker: actor,
                            outcome: TaskOutcome::Failed(TaskError::Timeout { after: dl }),
                        };
                        let _ = inner2.results.send_now(result);
                    }
                });
            }
            let inner2 = Rc::clone(inner);
            inner.sim.spawn_detached(async move {
                FnXExecutor::deliver(inner2, task, endpoint).await;
            });
        })
    }

    fn label(&self) -> &'static str {
        "fnx"
    }

    fn backpressure(&self) -> Option<BackpressureGate> {
        if self.inner.gate.is_empty() {
            None
        } else {
            Some(self.inner.gate.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_store::SiteId;
    use hetflow_sim::Receiver;

    fn fixed_params() -> FnXParams {
        FnXParams {
            https_latency: Dist::Constant(0.1),
            small_store_op: Dist::Constant(0.04),
            small_store_bw: 4.0e4,
            large_store_op: Dist::Constant(0.2),
            large_store_bw: 8.0e5,
            small_threshold: 20_000,
            payload_cap: 10_000_000,
            forward_latency: Dist::Constant(0.05),
            result_latency: Dist::Constant(0.06),
        }
    }

    fn setup(workers: usize) -> (Sim, FnXExecutor, Receiver<TaskResult>) {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let exec = FnXExecutor::new(
            &sim,
            fixed_params(),
            vec![EndpointSpec::reliable(
                WorkerPoolConfig::bare(SiteId(0), "theta", workers),
                vec!["noop", "unit"],
            )],
            res_tx,
            SimRng::from_seed(5),
            Tracer::disabled(),
        );
        (sim, exec, res_rx)
    }

    #[test]
    fn submit_pays_only_https() {
        let (sim, exec, _res) = setup(1);
        let s = sim.clone();
        let e = exec.clone();
        let h = sim.spawn(async move {
            e.submit(TaskSpec::noop(0, 1_000)).await;
            s.now().as_secs_f64()
        });
        let t = sim.block_on(h);
        assert!((t - 0.1).abs() < 1e-9, "dispatch cost = HTTPS RTT, got {t}");
    }

    #[test]
    fn task_executes_and_result_returns() {
        let (sim, exec, res_rx) = setup(1);
        let e = exec.clone();
        sim.spawn(async move {
            e.submit(TaskSpec::noop(7, 1_000)).await;
        });
        sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.id, 7);
        assert!(r.timing.worker_started.is_some());
        assert!(r.timing.server_result_received.is_some());
        assert_eq!(exec.submitted(), 1);
        assert_eq!(exec.returned(), 1);
    }

    #[test]
    fn larger_payloads_cost_more_cloud_time() {
        // Compare the dispatched→worker_started span for 500 B-ish vs
        // 1 MB payloads: the cloud path dominates, reproducing Fig. 3's
        // shape.
        let span_for = |payload: u64| {
            let (sim, exec, res_rx) = setup(1);
            let e = exec.clone();
            sim.spawn(async move {
                e.submit(TaskSpec::noop(0, payload)).await;
            });
            sim.run();
            let r = &res_rx.drain_now()[0];
            r.timing.server_to_worker().unwrap().as_secs_f64()
        };
        let small = span_for(500); // proxy-sized
        let mid = span_for(10_000);
        let large = span_for(1_000_000);
        assert!(mid / small > 1.8, "10kB/proxy ratio: {}", mid / small);
        assert!(mid / small < 4.0, "10kB/proxy ratio: {}", mid / small);
        assert!(large / small > 7.0, "1MB/proxy ratio: {}", large / small);
        assert!(large / small < 16.0, "1MB/proxy ratio: {}", large / small);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversize_payload_rejected() {
        let (sim, exec, _res) = setup(1);
        let e = exec.clone();
        let h = sim.spawn(async move {
            e.submit(TaskSpec::noop(0, 50_000_000)).await;
        });
        sim.block_on(h);
    }

    #[test]
    #[should_panic(expected = "no endpoint registered")]
    fn unrouted_topic_rejected() {
        let (sim, exec, _res) = setup(1);
        let e = exec.clone();
        let h = sim.spawn(async move {
            let t = TaskSpec::new(0, "mystery", vec![], Rc::new(|_| crate::task::TaskWork::noop()));
            e.submit(t).await;
        });
        sim.block_on(h);
    }

    #[test]
    fn concurrent_submissions_pipeline() {
        // The cloud path must not serialize independent tasks.
        let (sim, exec, res_rx) = setup(4);
        let e = exec.clone();
        sim.spawn(async move {
            for i in 0..4 {
                e.submit(TaskSpec::noop(i, 1_000)).await;
            }
        });
        let r = sim.run();
        assert_eq!(res_rx.drain_now().len(), 4);
        // 4 sequential submissions pay 4×0.1s HTTPS; the rest overlaps.
        // Full serial execution would take > 4×(0.1+0.04+0.05+0.04+…);
        // ensure we finish well under that.
        assert!(r.end.as_secs_f64() < 1.2, "end {}", r.end);
    }

    #[test]
    fn delivery_timeout_fails_tasks_stuck_behind_outage() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let mut pool = WorkerPoolConfig::bare(SiteId(0), "theta", 1);
        pool.retry = RetryPolicies::default().with_topic(
            "noop",
            crate::reliability::RetryPolicy {
                timeout: Some(std::time::Duration::from_secs(30)),
                ..Default::default()
            },
        );
        let connectivity = crate::reliability::Connectivity::always_on();
        connectivity.set_online(false); // offline before any delivery
        let tracer = Tracer::enabled();
        let exec = FnXExecutor::new(
            &sim,
            fixed_params(),
            vec![EndpointSpec { pool, topics: vec!["noop"], connectivity }],
            res_tx,
            SimRng::from_seed(5),
            tracer.clone(),
        );
        let e = exec.clone();
        sim.spawn(async move {
            e.submit(TaskSpec::noop(3, 1_000)).await;
        });
        let r = sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 1);
        let res = &results[0];
        assert!(res.is_failed());
        assert_eq!(
            res.outcome.error(),
            Some(&TaskError::Timeout { after: std::time::Duration::from_secs(30) })
        );
        assert_eq!(res.id, 3);
        assert!(res.timing.worker_started.is_none(), "task never reached a worker");
        assert_eq!(exec.timed_out(), 1);
        assert_eq!(exec.returned(), 1);
        assert_eq!(tracer.events_of_kind(kinds::TASK_TIMEOUT).len(), 1);
        // The deadline — not the (never-ending) outage — bounds the run:
        // 0.1 s HTTPS + 30 s deadline.
        assert!(r.end.as_secs_f64() < 31.0, "end {}", r.end);
    }

    #[test]
    fn timeout_reroutes_to_failover_endpoint() {
        // Endpoint 0 (primary) is dark; the topic's reroute budget lets
        // the delivery timeout re-dispatch to endpoint 1 instead of
        // failing — the task completes there, stamped reroutes=1.
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let mut pool_a = WorkerPoolConfig::bare(SiteId(0), "a", 1);
        pool_a.retry = RetryPolicies::default().with_topic(
            "noop",
            crate::reliability::RetryPolicy {
                timeout: Some(Duration::from_secs(30)),
                ..Default::default()
            },
        );
        let mut pool_b = WorkerPoolConfig::bare(SiteId(1), "b", 1);
        pool_b.retry = pool_a.retry.clone();
        let dead = crate::reliability::Connectivity::always_on();
        dead.set_online(false);
        let tracer = Tracer::enabled();
        let exec = FnXExecutor::with_reliability(
            &sim,
            fixed_params(),
            vec![
                EndpointSpec { pool: pool_a, topics: vec!["noop"], connectivity: dead },
                EndpointSpec::reliable(pool_b, vec!["noop"]),
            ],
            res_tx,
            SimRng::from_seed(5),
            tracer.clone(),
            ReliabilityPolicies {
                default: crate::health::ReliabilityPolicy {
                    max_reroutes: 1,
                    ..Default::default()
                },
                per_topic: SymbolMap::new(),
            },
        );
        let e = exec.clone();
        sim.spawn(async move {
            e.submit(TaskSpec::noop(4, 1_000)).await;
        });
        sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 1, "exactly one terminal outcome");
        let r = &results[0];
        assert!(!r.is_failed(), "the reroute rescued the task");
        assert_eq!(r.site, SiteId(1));
        assert_eq!(r.report.reroutes, 1);
        assert_eq!(tracer.events_of_kind(kinds::TASK_REROUTED).len(), 1);
        assert!(tracer.events_of_kind(kinds::TASK_TIMEOUT).is_empty());
        assert_eq!(exec.timed_out(), 0);
        assert_eq!(exec.health().rerouted(), 1);
    }

    #[test]
    fn breaker_steers_dispatch_after_offline_grace() {
        // Endpoint 0 dies at t=1; the heartbeat watcher trips its
        // breaker after the 5 s grace, so tasks submitted later steer
        // straight to endpoint 1 — no per-task timeout needed.
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let conn_a = crate::reliability::Connectivity::always_on();
        let tracer = Tracer::enabled();
        let exec = FnXExecutor::with_reliability(
            &sim,
            fixed_params(),
            vec![
                EndpointSpec {
                    pool: WorkerPoolConfig::bare(SiteId(0), "a", 1),
                    topics: vec!["noop"],
                    connectivity: conn_a.clone(),
                },
                EndpointSpec::reliable(WorkerPoolConfig::bare(SiteId(1), "b", 1), vec!["noop"]),
            ],
            res_tx,
            SimRng::from_seed(5),
            tracer.clone(),
            ReliabilityPolicies {
                default: crate::health::ReliabilityPolicy {
                    breaker: crate::health::BreakerConfig {
                        failure_threshold: 1,
                        offline_grace: Duration::from_secs(5),
                        open_for: Duration::from_secs(600),
                        ..Default::default()
                    },
                    ..Default::default()
                },
                per_topic: SymbolMap::new(),
            },
        );
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_secs(1)).await;
            conn_a.set_online(false);
        });
        let e = exec.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_secs(20)).await; // after the trip at t=6
            for i in 0..3 {
                e.submit(TaskSpec::noop(i, 1_000)).await;
            }
        });
        sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.site == SiteId(1)), "all failed over to endpoint 1");
        let opened = tracer.events_of_kind(kinds::BREAKER_OPENED);
        assert_eq!(opened.len(), 1);
        assert_eq!(opened[0].entity, 0, "endpoint 0's breaker opened");
        assert!(exec.health().breaker_open(0));
    }

    #[test]
    fn hedged_dispatch_rescues_straggler_exactly_once() {
        // Warm the round-trip estimate with fast tasks, then make
        // endpoint 0's pool a straggler: the hedge watchdog re-issues
        // the slow task on endpoint 1, whose copy wins; the straggling
        // copy is cancelled when it finally surfaces.
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let pool_a = WorkerPoolConfig::bare(SiteId(0), "a", 1);
        let pool_b = WorkerPoolConfig::bare(SiteId(1), "b", 1);
        let tracer = Tracer::enabled();
        let exec = FnXExecutor::with_reliability(
            &sim,
            fixed_params(),
            vec![
                EndpointSpec::reliable(pool_a, vec!["unit"]),
                EndpointSpec::reliable(pool_b, vec!["unit"]),
            ],
            res_tx,
            SimRng::from_seed(5),
            tracer.clone(),
            ReliabilityPolicies {
                default: crate::health::ReliabilityPolicy {
                    hedge: crate::health::HedgeConfig {
                        quantile: 0.5,
                        factor: 2.0,
                        min_samples: 3,
                        max_hedges: 1,
                    },
                    ..Default::default()
                },
                per_topic: SymbolMap::new(),
            },
        );
        let e = exec.clone();
        let targets = exec.chaos_targets();
        sim.spawn(async move {
            let mk = |id| {
                TaskSpec::new(
                    id,
                    "unit",
                    vec![],
                    Rc::new(|_| crate::task::TaskWork::new((), 0, Duration::from_secs(10))),
                )
            };
            // Warm-up: three clean round trips on the primary.
            for id in 0..3 {
                e.submit(mk(id)).await;
            }
            e.inner.sim.sleep(Duration::from_secs(60)).await;
            // Straggle the primary 50×, then submit the hedged task.
            targets.pace[0].set(50.0);
            e.submit(mk(3)).await;
        });
        sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 4, "exactly one result per submitted id");
        let slow = results.iter().find(|r| r.id == 3).expect("hedged task resolves");
        assert!(!slow.is_failed());
        assert_eq!(slow.site, SiteId(1), "the hedge copy on endpoint 1 won");
        assert_eq!(slow.report.hedges, 1);
        assert_eq!(tracer.events_of_kind(kinds::TASK_HEDGED).len(), 1);
        assert_eq!(tracer.events_of_kind(kinds::TASK_CANCELLED).len(), 1);
        assert_eq!(exec.health().hedged(), 1);
        assert_eq!(exec.health().cancelled(), 1);
        assert!(exec.health().wasted_secs() > 0.0, "the loser's burn is accounted");
    }

    #[test]
    fn topic_routing_to_correct_pool() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let exec = FnXExecutor::new(
            &sim,
            fixed_params(),
            vec![
                EndpointSpec::reliable(WorkerPoolConfig::bare(SiteId(0), "cpu", 1), vec!["simulate"]),
                EndpointSpec::reliable(WorkerPoolConfig::bare(SiteId(1), "gpu", 1), vec!["train"]),
            ],
            res_tx,
            SimRng::from_seed(5),
            Tracer::disabled(),
        );
        let e = exec.clone();
        sim.spawn(async move {
            let mk = |id, topic: &str| {
                TaskSpec::new(id, topic, vec![], Rc::new(|_| crate::task::TaskWork::noop()))
            };
            e.submit(mk(0, "simulate")).await;
            e.submit(mk(1, "train")).await;
        });
        sim.run();
        let mut results = res_rx.drain_now();
        results.sort_by_key(|r| r.id);
        assert_eq!(results[0].worker, "cpu/0");
        assert_eq!(results[0].site, SiteId(0));
        assert_eq!(results[1].worker, "gpu/0");
        assert_eq!(results[1].site, SiteId(1));
    }
}
