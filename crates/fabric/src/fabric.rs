//! The common fabric interface.

use crate::task::TaskSpec;
use std::future::Future;
use std::pin::Pin;

/// A compute fabric: something that accepts task submissions and
/// eventually delivers [`crate::task::TaskResult`]s on the result
/// channel supplied at construction.
///
/// `submit` returns a future whose completion marks the end of the
/// *client-side* submission cost (the HTTPS call for FnX, the
/// interchange hop + payload serialization for HTEX); the task then
/// travels and executes asynchronously.
pub trait Fabric {
    /// Submits a task; awaiting pays the client-side dispatch cost.
    fn submit(&self, task: TaskSpec) -> Pin<Box<dyn Future<Output = ()> + '_>>;

    /// Short fabric label used in reports (`"fnx"`, `"htex"`).
    fn label(&self) -> &'static str;

    /// The fabric's backpressure gate, when any topic has watermarks
    /// configured ([`crate::AdmissionConfig`]'s sibling
    /// `BackpressureConfig`). `None` — the default — means submissions
    /// are never gated and upstream clients skip the acquire entirely.
    fn backpressure(&self) -> Option<crate::reliability::overload::BackpressureGate> {
        None
    }
}
