//! Failure and outage models.
//!
//! §IV-A3 of the paper credits the cloud-hosted services with
//! robustness: "both FuncX and Globus's services accept and store tasks
//! (and results) even while remote endpoints (or clients) are
//! unavailable so tasks can be resumed when endpoints reconnect."
//! [`Connectivity`] models an endpoint's outbound connection going up
//! and down; the FnX fabric holds tasks in the cloud while the endpoint
//! is offline. [`FailureModel`] models worker-level task failures with
//! in-place re-execution.

use hetflow_sim::{Dist, Event, Sim, SimRng, SimTime, Symbol, SymbolMap};
use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

pub mod chaos;
pub mod overload;

/// A shared, mutable scalar dial: the hook through which the chaos
/// engine (and interactive scenarios) degrade a running component —
/// worker pace factors, link brownout multipliers, cloud-service
/// slowdowns. Cloning shares the underlying cell, so the component
/// holding one end and the chaos actor holding the other observe the
/// same value. Components read knobs lazily and skip the multiply when
/// the value is exactly neutral, so an untouched knob changes neither
/// timing nor RNG streams.
#[derive(Clone)]
pub struct Knob(Rc<Cell<f64>>);

impl Knob {
    /// A knob at `value`.
    pub fn new(value: f64) -> Self {
        Knob(Rc::new(Cell::new(value)))
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }

    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.0.set(value);
    }
}

impl std::fmt::Debug for Knob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Knob({})", self.0.get())
    }
}

struct ConnState {
    online: Cell<bool>,
    changed: Event,
    outages_seen: Cell<u32>,
}

/// An endpoint's connection state over time.
#[derive(Clone)]
pub struct Connectivity {
    state: Rc<ConnState>,
}

impl std::fmt::Debug for Connectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connectivity").field("online", &self.is_online()).finish()
    }
}

impl Connectivity {
    /// A connection that never drops.
    pub fn always_on() -> Self {
        Connectivity {
            state: Rc::new(ConnState {
                online: Cell::new(true),
                changed: Event::new(),
                outages_seen: Cell::new(0),
            }),
        }
    }

    /// A connection that goes offline at each `(start, duration)`
    /// window. Windows must be sorted and non-overlapping.
    pub fn scheduled(sim: &Sim, outages: Vec<(SimTime, Duration)>) -> Self {
        for pair in outages.windows(2) {
            assert!(
                pair[0].0 + pair[0].1 <= pair[1].0,
                "outage windows must be sorted and disjoint"
            );
        }
        let conn = Connectivity::always_on();
        let state = Rc::clone(&conn.state);
        let sim2 = sim.clone();
        sim.spawn(async move {
            for (start, duration) in outages {
                sim2.sleep_until(start).await;
                state.online.set(false);
                state.outages_seen.set(state.outages_seen.get() + 1);
                state.changed.set();
                state.changed.clear();
                sim2.sleep(duration).await;
                state.online.set(true);
                state.changed.set();
                state.changed.clear();
            }
        });
        conn
    }

    /// A connection whose up/down periods are drawn from distributions:
    /// starting online, it stays up for a draw of `up`, goes down for a
    /// draw of `down`, and repeats until the schedule passes `until`.
    /// The whole outage schedule is precomputed from `rng` up front, so
    /// the resulting connection is exactly as deterministic and
    /// digest-stable as a hand-written [`Connectivity::scheduled`] one.
    pub fn random(sim: &Sim, rng: &mut SimRng, up: &Dist, down: &Dist, until: SimTime) -> Self {
        let mut outages = Vec::new();
        let mut t = SimTime::ZERO;
        while t < until {
            // Clamp each period to a strictly positive length so the
            // schedule always advances and windows stay disjoint.
            let up_for = up.sample(rng).max(1e-9);
            let down_for = down.sample(rng).max(1e-9);
            let start = t + hetflow_sim::time::secs(up_for);
            if start >= until {
                break;
            }
            outages.push((start, hetflow_sim::time::secs(down_for)));
            t = start + hetflow_sim::time::secs(down_for);
        }
        Connectivity::scheduled(sim, outages)
    }

    /// Current state.
    pub fn is_online(&self) -> bool {
        self.state.online.get()
    }

    /// Number of outages that have begun so far.
    pub fn outages_seen(&self) -> u32 {
        self.state.outages_seen.get()
    }

    /// Resolves once the connection is online (immediately if it is).
    pub async fn wait_online(&self) {
        while !self.state.online.get() {
            self.state.changed.wait_next().await;
        }
    }

    /// Resolves at the *next* state transition (offline→online or
    /// online→offline). Used by heartbeat watchers, which must be
    /// event-driven: a watcher parked here pends on the event and never
    /// blocks simulation quiescence.
    pub async fn wait_change(&self) {
        self.state.changed.wait_next().await;
    }

    /// Manually set the state (for tests and interactive scenarios).
    pub fn set_online(&self, online: bool) {
        if self.state.online.get() != online {
            if !online {
                self.state.outages_seen.set(self.state.outages_seen.get() + 1);
            }
            self.state.online.set(online);
            self.state.changed.set();
            self.state.changed.clear();
        }
    }
}

/// Worker-level task failure model: each execution attempt fails with
/// probability `prob`; a failed attempt wastes a fraction of the
/// compute time plus a detection/restart delay, then the task is
/// re-executed on the same worker.
#[derive(Clone, Debug)]
pub struct FailureModel {
    /// Per-attempt failure probability.
    pub prob: f64,
    /// Fraction of the compute duration spent before the failure
    /// (uniform in `[0, 1]` scaled by this cap).
    pub waste_fraction: f64,
    /// Detection + restart delay.
    pub restart_delay: Dist,
    /// Attempts before giving up. Exhausting them is a normal,
    /// reportable outcome: the task fails with
    /// `TaskError::ExhaustedRetries` and the failure travels the result
    /// path back to the thinker. A per-topic
    /// [`RetryPolicy::max_attempts`] overrides this cap when nonzero.
    pub max_attempts: u32,
}

impl FailureModel {
    /// A model that never fails (useful default).
    pub fn none() -> Option<FailureModel> {
        None
    }

    /// Draws whether the next attempt fails.
    pub fn attempt_fails(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.prob)
    }

    /// Time wasted by a failed attempt on a task of `compute` length.
    pub fn wasted(&self, compute: Duration, rng: &mut SimRng) -> Duration {
        let frac = rng.unit() * self.waste_fraction.clamp(0.0, 1.0);
        let waste = compute.mul_f64(frac);
        waste + self.restart_delay.sample_secs(rng)
    }
}

/// How failures of one task topic are handled: how many execution
/// attempts a worker makes, how long the fabric waits for delivery
/// before declaring a timeout, and how long a worker backs off between
/// attempts.
///
/// The zero values are "defer": `max_attempts == 0` defers to the
/// pool's [`FailureModel::max_attempts`], `timeout == None` means no
/// deadline, and the default backoff `Dist::Constant(0.0)` draws no
/// random numbers — so the default policy leaves existing same-seed
/// traces bit-identical.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Execution attempts before the task fails with
    /// `ExhaustedRetries`. `0` defers to the failure model's cap.
    pub max_attempts: u32,
    /// Deadline for the fabric to deliver the task to its endpoint's
    /// worker pool — the cloud-transit leg, including any time spent
    /// held behind an endpoint outage. A task stuck longer than this
    /// fails with `TaskError::Timeout` instead of waiting forever.
    /// Execution and the result's return trip are not covered: once a
    /// worker has the task, it runs.
    pub timeout: Option<Duration>,
    /// Delay a worker inserts before each re-execution attempt (on top
    /// of the failure model's wasted time).
    pub backoff: Dist,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 0, timeout: None, backoff: Dist::Constant(0.0) }
    }
}

impl RetryPolicy {
    /// The attempt cap in effect given the pool's failure model.
    pub fn effective_max_attempts(&self, fm: &FailureModel) -> u32 {
        if self.max_attempts > 0 {
            self.max_attempts
        } else {
            fm.max_attempts
        }
    }
}

/// Per-topic retry policies with a fallback default, configurable on
/// `WorkerPoolConfig` (worker-side attempts/backoff) and consulted by
/// the fabrics (delivery timeouts).
#[derive(Clone, Debug, Default)]
pub struct RetryPolicies {
    /// Policy for topics without a dedicated entry.
    pub default: RetryPolicy,
    /// Topic-specific overrides. Indexed by interned [`Symbol`] id —
    /// O(1) per lookup on the dispatch path — while iterating in
    /// resolved-string order, so traces match the old
    /// `BTreeMap<String, _>` exactly.
    pub per_topic: SymbolMap<RetryPolicy>,
}

impl RetryPolicies {
    /// Builder: sets the policy for one topic.
    pub fn with_topic(mut self, topic: impl Into<Symbol>, policy: RetryPolicy) -> Self {
        self.per_topic.insert(topic.into(), policy);
        self
    }

    /// The policy governing `topic`.
    pub fn policy_for(&self, topic: impl Into<Symbol>) -> &RetryPolicy {
        self.per_topic.get(topic.into()).unwrap_or(&self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_sim::time::secs;

    #[test]
    fn always_on_never_blocks() {
        let sim = Sim::new();
        let conn = Connectivity::always_on();
        let c = conn.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            c.wait_online().await;
            s.now()
        });
        assert_eq!(sim.block_on(h), SimTime::ZERO);
        assert!(conn.is_online());
        assert_eq!(conn.outages_seen(), 0);
    }

    #[test]
    fn scheduled_outage_blocks_until_reconnect() {
        let sim = Sim::new();
        let conn = Connectivity::scheduled(
            &sim,
            vec![(SimTime::from_secs(10), Duration::from_secs(30))],
        );
        let c = conn.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(secs(15.0)).await; // mid-outage
            assert!(!c.is_online());
            c.wait_online().await;
            s.now()
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(40));
        assert_eq!(conn.outages_seen(), 1);
    }

    #[test]
    fn multiple_outages_in_order() {
        let sim = Sim::new();
        let conn = Connectivity::scheduled(
            &sim,
            vec![
                (SimTime::from_secs(10), Duration::from_secs(5)),
                (SimTime::from_secs(30), Duration::from_secs(5)),
            ],
        );
        sim.run();
        assert_eq!(conn.outages_seen(), 2);
        assert!(conn.is_online());
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn overlapping_outages_rejected() {
        let sim = Sim::new();
        let _ = Connectivity::scheduled(
            &sim,
            vec![
                (SimTime::from_secs(10), Duration::from_secs(20)),
                (SimTime::from_secs(15), Duration::from_secs(5)),
            ],
        );
    }

    #[test]
    fn manual_toggle() {
        let sim = Sim::new();
        let conn = Connectivity::always_on();
        conn.set_online(false);
        assert!(!conn.is_online());
        assert_eq!(conn.outages_seen(), 1);
        let c = conn.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            c.wait_online().await;
            s.now()
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(3.0)).await;
            conn.set_online(true);
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(3));
    }

    #[test]
    fn failure_model_statistics() {
        let m = FailureModel {
            prob: 0.3,
            waste_fraction: 0.5,
            restart_delay: Dist::Constant(1.0),
            max_attempts: 5,
        };
        let mut rng = SimRng::from_seed(4);
        let fails = (0..10_000).filter(|_| m.attempt_fails(&mut rng)).count();
        assert!((2_700..3_300).contains(&fails), "{fails}");
        let wasted = m.wasted(Duration::from_secs(100), &mut rng);
        assert!(wasted >= Duration::from_secs(1));
        assert!(wasted <= Duration::from_secs(51));
    }

    #[test]
    fn knob_shares_state_across_clones() {
        let k = Knob::new(1.0);
        let k2 = k.clone();
        k2.set(2.5);
        assert_eq!(k.get(), 2.5);
        assert_eq!(format!("{k:?}"), "Knob(2.5)");
    }

    #[test]
    fn random_connectivity_is_deterministic_and_finite() {
        let schedule = |seed: u64| {
            let sim = Sim::new();
            let mut rng = SimRng::from_seed(seed);
            let conn = Connectivity::random(
                &sim,
                &mut rng,
                &Dist::Uniform { lo: 5.0, hi: 20.0 },
                &Dist::Uniform { lo: 1.0, hi: 10.0 },
                SimTime::from_secs(500),
            );
            let r = sim.run();
            assert_eq!(r.pending_tasks, 0, "schedule actor must terminate");
            (conn.outages_seen(), sim.now())
        };
        let (outages, end) = schedule(7);
        assert!(outages > 5, "500s of 5-30s cycles must produce outages, got {outages}");
        assert_eq!((outages, end), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7).1, schedule(8).1, "different seeds should diverge");
    }

    #[test]
    fn random_connectivity_ends_online_before_horizon_plus_down() {
        let sim = Sim::new();
        let mut rng = SimRng::from_seed(3);
        let conn = Connectivity::random(
            &sim,
            &mut rng,
            &Dist::Constant(10.0),
            &Dist::Constant(5.0),
            SimTime::from_secs(100),
        );
        sim.run();
        assert!(conn.is_online(), "schedule always returns online after the last outage");
        // up 10 / down 5 cycles until a start >= 100: starts at 10, 25,
        // 40, 55, 70, 85 — six outages.
        assert_eq!(conn.outages_seen(), 6);
    }

    #[test]
    fn wait_change_observes_both_transitions() {
        let sim = Sim::new();
        let conn = Connectivity::scheduled(
            &sim,
            vec![(SimTime::from_secs(5), Duration::from_secs(5))],
        );
        let c = conn.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            c.wait_change().await;
            let first = (s.now(), c.is_online());
            c.wait_change().await;
            let second = (s.now(), c.is_online());
            (first, second)
        });
        let (first, second) = sim.block_on(h);
        assert_eq!(first, (SimTime::from_secs(5), false));
        assert_eq!(second, (SimTime::from_secs(10), true));
    }

    #[test]
    fn retry_policies_resolve_per_topic() {
        let policies = RetryPolicies::default().with_topic(
            "train",
            RetryPolicy { max_attempts: 3, ..RetryPolicy::default() },
        );
        assert_eq!(policies.policy_for("train").max_attempts, 3);
        assert_eq!(policies.policy_for("simulate").max_attempts, 0);
        let fm = FailureModel {
            prob: 0.1,
            waste_fraction: 0.5,
            restart_delay: Dist::Constant(1.0),
            max_attempts: 7,
        };
        assert_eq!(policies.policy_for("train").effective_max_attempts(&fm), 3);
        assert_eq!(policies.policy_for("simulate").effective_max_attempts(&fm), 7);
        assert!(policies.policy_for("simulate").timeout.is_none());
    }
}
