//! Batch-scheduler resource provisioning.
//!
//! HPC endpoints do not own their nodes: a pilot job waits in a batch
//! queue, then nodes boot workers. [`Provisioner`] models that ramp-up
//! by metering permits into a [`Semaphore`] that worker launch loops
//! acquire from. The steady-state experiments in the paper run with
//! resources already provisioned (zero queue delay), but utilization
//! traces (Fig. 1) show the initial ramp.

use hetflow_sim::{Dist, Semaphore, Sim, SimRng, SimTime};
use std::time::Duration;

/// Description of a pilot-job allocation.
#[derive(Clone, Debug)]
pub struct ProvisionSpec {
    /// Batch-queue wait before any node comes online.
    pub queue_delay: Dist,
    /// Number of nodes in the allocation.
    pub nodes: usize,
    /// Workers started per node.
    pub workers_per_node: usize,
    /// Per-node boot/launch time once the job starts.
    pub node_startup: Dist,
    /// Wall-clock limit of the allocation (`None` = unlimited).
    pub walltime: Option<Duration>,
}

impl ProvisionSpec {
    /// An already-provisioned steady-state allocation.
    pub fn immediate(nodes: usize, workers_per_node: usize) -> Self {
        ProvisionSpec {
            queue_delay: Dist::Constant(0.0),
            nodes,
            workers_per_node,
            node_startup: Dist::Constant(0.0),
            walltime: None,
        }
    }

    /// Total worker slots at full ramp.
    pub fn total_workers(&self) -> usize {
        self.nodes * self.workers_per_node
    }

    /// Samples a per-worker start-delay vector suitable for
    /// [`crate::worker::WorkerPoolConfig::start_delays`]: one batch-queue
    /// wait shared by all nodes, plus per-node boot times.
    pub fn worker_delays(&self, rng: &mut SimRng) -> Vec<Duration> {
        let queue = self.queue_delay.sample(rng);
        let mut delays = Vec::with_capacity(self.total_workers());
        for _node in 0..self.nodes {
            let boot = self.node_startup.sample(rng);
            let d = hetflow_sim::time::secs(queue + boot);
            for _ in 0..self.workers_per_node {
                delays.push(d);
            }
        }
        delays
    }
}

/// Outcome of a provisioning run.
#[derive(Clone, Debug, PartialEq)]
pub struct ProvisionReport {
    /// When the batch job started (after queueing).
    pub job_started: SimTime,
    /// When the last node's workers were online.
    pub fully_ramped: SimTime,
    /// Worker slots made available.
    pub workers: usize,
}

/// Drives a [`ProvisionSpec`], releasing permits as nodes come online.
pub struct Provisioner;

impl Provisioner {
    /// Spawns the provisioning process. Worker slots appear as permits
    /// in the returned semaphore; the join handle yields a ramp report.
    pub fn start(
        sim: &Sim,
        spec: ProvisionSpec,
        mut rng: SimRng,
    ) -> (Semaphore, hetflow_sim::JoinHandle<ProvisionReport>) {
        let slots = Semaphore::new(0);
        let slots2 = slots.clone();
        let sim2 = sim.clone();
        let handle = sim.spawn(async move {
            let queue = spec.queue_delay.sample_secs(&mut rng);
            sim2.sleep(queue).await;
            let job_started = sim2.now();
            // Nodes boot concurrently; each releases its workers when
            // its startup completes.
            let mut startups: Vec<f64> =
                (0..spec.nodes).map(|_| spec.node_startup.sample(&mut rng)).collect();
            startups.sort_by(f64::total_cmp);
            let mut elapsed = 0.0;
            for s in &startups {
                let wait = s - elapsed;
                sim2.sleep(hetflow_sim::time::secs(wait)).await;
                elapsed = *s;
                slots2.add_permits(spec.workers_per_node);
            }
            ProvisionReport {
                job_started,
                fully_ramped: sim2.now(),
                workers: spec.total_workers(),
            }
        });
        (slots, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_spec_ramps_at_zero() {
        let sim = Sim::new();
        let (slots, handle) = Provisioner::start(
            &sim,
            ProvisionSpec::immediate(4, 8),
            SimRng::from_seed(1),
        );
        let report = sim.block_on(handle);
        assert_eq!(report.job_started, SimTime::ZERO);
        assert_eq!(report.fully_ramped, SimTime::ZERO);
        assert_eq!(report.workers, 32);
        assert_eq!(slots.available(), 32);
    }

    #[test]
    fn queue_delay_gates_all_nodes() {
        let sim = Sim::new();
        let spec = ProvisionSpec {
            queue_delay: Dist::Constant(100.0),
            nodes: 2,
            workers_per_node: 4,
            node_startup: Dist::Constant(10.0),
            walltime: None,
        };
        let (slots, handle) = Provisioner::start(&sim, spec, SimRng::from_seed(1));
        sim.run_until(SimTime::from_secs(50));
        assert_eq!(slots.available(), 0, "nothing online while queued");
        let report = sim.block_on(handle);
        assert_eq!(report.job_started, SimTime::from_secs(100));
        assert_eq!(report.fully_ramped, SimTime::from_secs(110));
        assert_eq!(slots.available(), 8);
    }

    #[test]
    fn staggered_startup_ramps_incrementally() {
        let sim = Sim::new();
        let spec = ProvisionSpec {
            queue_delay: Dist::Constant(0.0),
            nodes: 3,
            workers_per_node: 2,
            node_startup: Dist::Uniform { lo: 5.0, hi: 30.0 },
            walltime: None,
        };
        let (slots, handle) = Provisioner::start(&sim, spec, SimRng::from_seed(9));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(slots.available(), 0);
        let report = sim.block_on(handle);
        assert_eq!(slots.available(), 6);
        assert!(report.fully_ramped >= SimTime::from_secs(5));
        assert!(report.fully_ramped <= SimTime::from_secs(30));
    }

    #[test]
    fn worker_delays_shape() {
        let spec = ProvisionSpec {
            queue_delay: Dist::Constant(100.0),
            nodes: 3,
            workers_per_node: 2,
            node_startup: Dist::Uniform { lo: 5.0, hi: 20.0 },
            walltime: None,
        };
        let mut rng = SimRng::from_seed(5);
        let delays = spec.worker_delays(&mut rng);
        assert_eq!(delays.len(), 6);
        // Workers on the same node share a delay.
        assert_eq!(delays[0], delays[1]);
        assert_eq!(delays[2], delays[3]);
        for d in &delays {
            assert!(*d >= Duration::from_secs(105) && *d <= Duration::from_secs(120));
        }
    }

    #[test]
    fn waiting_tasks_start_as_nodes_arrive() {
        let sim = Sim::new();
        let spec = ProvisionSpec {
            queue_delay: Dist::Constant(10.0),
            nodes: 1,
            workers_per_node: 1,
            node_startup: Dist::Constant(0.0),
            walltime: None,
        };
        let (slots, _handle) = Provisioner::start(&sim, spec, SimRng::from_seed(1));
        let s = sim.clone();
        let h = sim.spawn(async move {
            let _p = slots.acquire().await;
            s.now()
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(10));
    }
}
