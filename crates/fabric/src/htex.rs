//! HTEX — the direct-connection executor baseline (the paper's Parsl
//! HighThroughputExecutor, §V-B).
//!
//! An *interchange* process co-located with the task server forwards
//! tasks over direct TCP links to per-resource managers, which hand them
//! to workers. This requires two open ports (or a tunnel) per resource —
//! the deployment burden the cloud-managed approach removes — but moves
//! payloads at LAN/tunnel bandwidth instead of through cloud storage
//! tiers.
//!
//! Without ProxyStore, large task data rides these links and is
//! re-serialized at each hop; the per-byte cost below is the *effective*
//! aggregate (pickle passes + ZMQ copies), calibrated so a 3 MB payload
//! costs ~hundreds of ms end-to-end (Fig. 7b) while multi-GB inference
//! payloads remain feasible, merely slow (Fig. 6).

use crate::fabric::Fabric;
use crate::health::{ReliabilityLayer, ReliabilityPolicies, TimeoutVerdict, Verdict};
use crate::reliability::chaos::ChaosTargets;
use crate::reliability::overload::{AdmissionConfig, AdmissionController, BackpressureGate};
use crate::reliability::{Knob, RetryPolicies};
use crate::task::{Arg, TaskError, TaskOutcome, TaskResult, TaskSpec, WorkerReport};
use crate::worker::{WorkerPool, WorkerPoolConfig};
use hetflow_sim::{
    channel, trace_kinds as kinds, Dist, Offered, OverflowPolicy, Sender, Sim, SimRng, Symbol,
    SymbolMap, Tracer,
};
use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

/// Link from the interchange to one resource's manager.
#[derive(Clone, Debug)]
pub struct LinkParams {
    /// Per-message latency (TCP + framing).
    pub latency: Dist,
    /// Effective payload throughput, bytes/s, including the pickle
    /// passes at interchange and manager.
    pub bandwidth: f64,
}

impl LinkParams {
    /// A fast intra-facility link.
    pub fn local() -> Self {
        LinkParams { latency: Dist::LogNormal { median: 0.004, sigma: 0.3 }, bandwidth: 4.0e7 }
    }

    /// A cross-site tunnel (still a direct connection, higher latency).
    pub fn tunnel() -> Self {
        LinkParams { latency: Dist::LogNormal { median: 0.012, sigma: 0.3 }, bandwidth: 2.5e7 }
    }
}

/// Tunables of the interchange.
#[derive(Clone, Debug)]
pub struct HtexParams {
    /// Client→interchange hop (same login node).
    pub submit_hop: Dist,
    /// Interchange-side serialization throughput, bytes/s.
    pub interchange_bw: f64,
}

impl Default for HtexParams {
    fn default() -> Self {
        HtexParams {
            submit_hop: Dist::LogNormal { median: 0.002, sigma: 0.3 },
            interchange_bw: 1.0e8,
        }
    }
}

/// One resource behind the interchange.
pub struct HtexEndpoint {
    /// The pool this manager feeds.
    pub pool: WorkerPoolConfig,
    /// Task topics executed here.
    pub topics: Vec<&'static str>,
    /// The link from the interchange to this manager.
    pub link: LinkParams,
}

struct Inner {
    sim: Sim,
    params: HtexParams,
    /// Pre-interned `"htex/ep{i}"` trace actors, one per endpoint.
    actors: Vec<Symbol>,
    rng: RefCell<SimRng>,
    health: ReliabilityLayer,
    pools: Vec<WorkerPool>,
    links: Vec<LinkParams>,
    retries: Vec<RetryPolicies>,
    /// Per-endpoint link-degradation dials (chaos-engine targets).
    brownout: Vec<Knob>,
    /// Per-endpoint pool-queue bound and overflow policy (0 = unbounded).
    bounds: Vec<(usize, OverflowPolicy)>,
    /// Token-bucket/in-flight admission, consulted before the breaker
    /// layer; only topics with an enabled config appear in the map.
    admission: AdmissionController,
    admission_cfgs: SymbolMap<AdmissionConfig>,
    /// Per-topic depth watermark gate; empty when no topic configures
    /// backpressure.
    gate: BackpressureGate,
    /// Primary endpoint per routed topic (attribution for tasks shed
    /// before an endpoint is picked).
    primary: SymbolMap<usize>,
    results: Sender<TaskResult>,
    tracer: Tracer,
    submitted: Cell<u64>,
    returned: Cell<u64>,
    timed_out: Cell<u64>,
    shed: Cell<u64>,
    link_bytes: Cell<u64>,
}

/// The HTEX executor.
#[derive(Clone)]
pub struct HtexExecutor {
    inner: Rc<Inner>,
}

impl HtexExecutor {
    /// Builds the executor, spawning one pool per endpoint. Reliability
    /// mechanisms are disabled — see [`HtexExecutor::with_reliability`].
    pub fn new(
        sim: &Sim,
        params: HtexParams,
        endpoints: Vec<HtexEndpoint>,
        results: Sender<TaskResult>,
        rng: SimRng,
        tracer: Tracer,
    ) -> HtexExecutor {
        Self::with_reliability(
            sim,
            params,
            endpoints,
            results,
            rng,
            tracer,
            ReliabilityPolicies::default(),
        )
    }

    /// Builds the executor with an active [`ReliabilityLayer`],
    /// mirroring [`crate::faas::FnXExecutor::with_reliability`]: a topic
    /// registered on several endpoints fails over (first registration is
    /// primary), breakers steer dispatches away from unhealthy managers,
    /// and hedged/rerouted copies deliver exactly once.
    pub fn with_reliability(
        sim: &Sim,
        params: HtexParams,
        endpoints: Vec<HtexEndpoint>,
        results: Sender<TaskResult>,
        rng: SimRng,
        tracer: Tracer,
        policies: ReliabilityPolicies,
    ) -> HtexExecutor {
        let mut route: SymbolMap<Vec<usize>> = SymbolMap::new();
        let mut primary: SymbolMap<usize> = SymbolMap::new();
        let mut pools = Vec::new();
        let mut links = Vec::new();
        let mut retries = Vec::new();
        let mut brownout = Vec::new();
        let mut bounds = Vec::new();
        let mut pool_streams = Vec::new();
        for (i, ep) in endpoints.into_iter().enumerate() {
            for topic in &ep.topics {
                let sym = Symbol::intern(topic);
                let targets = route.get_or_insert_with(sym, Vec::new);
                if targets.is_empty() {
                    primary.insert(sym, i);
                }
                targets.push(i);
            }
            let (pool_res_tx, pool_res_rx) = channel::<TaskResult>();
            retries.push(ep.pool.retry.clone());
            bounds.push((ep.pool.queue_capacity, ep.pool.overflow));
            let pool = WorkerPool::spawn(
                sim,
                ep.pool,
                pool_res_tx,
                &rng.substream(i as u64),
                tracer.clone(),
            );
            pools.push(pool);
            links.push(ep.link);
            brownout.push(Knob::new(1.0));
            pool_streams.push(pool_res_rx);
        }
        // Overload protection mirrors the FnX fabric: admission configs
        // and backpressure watermarks come off the policies; all-zero
        // configs register nothing.
        let admission = AdmissionController::new(sim);
        let mut admission_cfgs: SymbolMap<AdmissionConfig> = SymbolMap::new();
        let gate = BackpressureGate::new(sim, tracer.clone(), "htex");
        for topic in primary.keys() {
            let policy = policies.policy_for(topic);
            if policy.admission.enabled() {
                admission_cfgs.insert(topic, policy.admission.clone());
            }
            gate.register(topic, &policy.backpressure);
        }
        // HTEX managers have direct links (no Connectivity), so the
        // layer spawns no heartbeat watchers; breakers are fed by task
        // outcomes and timeouts only.
        let health = ReliabilityLayer::new(sim, tracer.clone(), "htex", policies, route, &[]);
        let actors =
            (0..pools.len()).map(|i| Symbol::intern(&format!("htex/ep{i}"))).collect();
        let inner = Rc::new(Inner {
            sim: sim.clone(),
            params,
            actors,
            rng: RefCell::new(rng.substream(u64::MAX)),
            health,
            pools,
            links,
            retries,
            brownout,
            bounds,
            admission,
            admission_cfgs,
            gate,
            primary,
            results,
            tracer,
            submitted: Cell::new(0),
            returned: Cell::new(0),
            timed_out: Cell::new(0),
            shed: Cell::new(0),
            link_bytes: Cell::new(0),
        });
        for (i, rx) in pool_streams.into_iter().enumerate() {
            let inner2 = Rc::clone(&inner);
            sim.spawn_detached(async move {
                while let Some(result) = rx.recv().await {
                    let inner3 = Rc::clone(&inner2);
                    inner2.sim.spawn_detached(async move {
                        HtexExecutor::return_result(inner3, result, i).await;
                    });
                }
            });
        }
        HtexExecutor { inner }
    }

    /// Endpoint worker pools (for utilization metrics).
    pub fn pools(&self) -> &[WorkerPool] {
        &self.inner.pools
    }

    /// The reliability layer (breaker state, hedge/reroute counters).
    pub fn health(&self) -> ReliabilityLayer {
        self.inner.health.clone()
    }

    /// The chaos-engine handles of this deployment. HTEX has no
    /// endpoint connectivity and no cloud service, so only pool and
    /// link dials are exposed; the storm target is wired by the
    /// deployment layer, which owns the `Rc<dyn Fabric>` handle.
    pub fn chaos_targets(&self) -> ChaosTargets {
        ChaosTargets {
            connectivity: Vec::new(),
            pace: self.inner.pools.iter().map(WorkerPool::pace_knob).collect(),
            crash: self.inner.pools.iter().map(WorkerPool::crash_knob).collect(),
            brownout: self.inner.brownout.clone(),
            cloud: None,
            storm: None,
        }
    }

    /// Tasks submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.get()
    }

    /// Results returned so far.
    pub fn returned(&self) -> u64 {
        self.inner.returned.get()
    }

    /// Payload bytes moved over interchange links (both directions).
    pub fn link_bytes(&self) -> u64 {
        self.inner.link_bytes.get()
    }

    /// Tasks failed by the delivery deadline (`RetryPolicy::timeout`).
    pub fn timed_out(&self) -> u64 {
        self.inner.timed_out.get()
    }

    /// Tasks dropped by overload protection (admission refusals plus
    /// queue-overflow evictions) — each still delivered a terminal
    /// [`TaskOutcome::Shed`] result.
    pub fn shed(&self) -> u64 {
        self.inner.shed.get()
    }

    /// The admission controller (in-flight/rejection counters).
    pub fn admission(&self) -> &AdmissionController {
        &self.inner.admission
    }

    /// Balances the overload accounting when a task reaches its one
    /// terminal outcome: the topic's in-fabric depth drops (possibly
    /// reopening the backpressure gate) and its admission slot frees.
    fn release(inner: &Inner, topic: Symbol) {
        inner.gate.on_exit(topic);
        inner.admission.on_done(topic);
    }

    /// Delivers the terminal [`TaskOutcome::Shed`] result for a task
    /// dropped by overload protection. `load` is the queue depth or
    /// in-flight count observed at the shed decision (the trace value).
    fn shed_result(inner: &Inner, spec: TaskSpec, endpoint: usize, hedges: u32, reroutes: u32, load: f64) {
        let now = inner.sim.now();
        let actor = inner.actors[endpoint];
        inner.tracer.emit(now, actor, kinds::TASK_SHED, spec.id, load);
        let mut timing = spec.timing;
        timing.server_result_received = Some(now);
        inner.shed.set(inner.shed.get() + 1);
        inner.returned.set(inner.returned.get() + 1);
        let result = TaskResult {
            id: spec.id,
            topic: spec.topic,
            output: Arg::empty(),
            input_bytes: spec.args.iter().map(Arg::data_bytes).sum(),
            report: WorkerReport { hedges, reroutes, ..WorkerReport::default() },
            timing,
            site: inner.pools[endpoint].site(),
            worker: actor,
            outcome: TaskOutcome::Shed,
        };
        let _ = inner.results.send_now(result); // hetlint: allow(r15) — teardown-tolerant: the campaign driver may have dropped the results receiver
    }

    fn link_cost(inner: &Inner, endpoint: usize, bytes: u64) -> std::time::Duration {
        let link = &inner.links[endpoint];
        let lat = link.latency.sample(&mut inner.rng.borrow_mut());
        let cost = hetflow_sim::time::secs(lat + bytes as f64 / link.bandwidth);
        // Chaos brownout dial: degraded links move bytes slower.
        let f = inner.brownout[endpoint].get();
        if f != 1.0 {
            cost.mul_f64(f.max(0.0))
        } else {
            cost
        }
    }

    /// Races the link transfer against the topic's
    /// `RetryPolicy::timeout`, mirroring the FnX fabric: an undeliverable
    /// task fails with `TaskError::Timeout` through the result channel.
    async fn deliver(inner: Rc<Inner>, task: TaskSpec, endpoint: usize) {
        let deadline = inner.retries[endpoint].policy_for(task.topic).timeout;
        let Some(deadline) = deadline else {
            Self::deliver_inner(inner, task, endpoint).await;
            return;
        };
        let id = task.id;
        let topic = task.topic;
        let mut timing = task.timing;
        let input_bytes = task.args.iter().map(Arg::data_bytes).sum();
        let attempt = Box::pin(Self::deliver_inner(Rc::clone(&inner), task, endpoint));
        if inner.sim.timeout(deadline, attempt).await.is_err() {
            match inner.health.on_timeout(endpoint, id, topic) {
                TimeoutVerdict::Reroute { spec, to } => {
                    let inner2 = Rc::clone(&inner);
                    // Boxed to break the deliver → deliver type cycle.
                    let redo: Pin<Box<dyn Future<Output = ()>>> =
                        Box::pin(Self::deliver(inner2, *spec, to));
                    inner.sim.spawn_detached(redo);
                }
                TimeoutVerdict::Suppress => {}
                TimeoutVerdict::Fail => {
                    let now = inner.sim.now();
                    let actor = inner.actors[endpoint];
                    inner.tracer.emit(now, actor, kinds::TASK_TIMEOUT, id, deadline.as_secs_f64());
                    Self::release(&inner, topic);
                    timing.server_result_received = Some(now);
                    inner.timed_out.set(inner.timed_out.get() + 1);
                    inner.returned.set(inner.returned.get() + 1);
                    let result = TaskResult {
                        id,
                        topic,
                        output: Arg::empty(),
                        input_bytes,
                        report: WorkerReport::default(),
                        timing,
                        site: inner.pools[endpoint].site(),
                        worker: actor,
                        outcome: TaskOutcome::Failed(TaskError::Timeout { after: deadline }),
                    };
                    let _ = inner.results.send_now(result); // hetlint: allow(r15) — teardown-tolerant: the campaign driver may have dropped the results receiver
                }
            }
        }
    }

    async fn deliver_inner(inner: Rc<Inner>, task: TaskSpec, endpoint: usize) {
        let bytes = task.wire_bytes();
        let cost = Self::link_cost(&inner, endpoint, bytes);
        inner.sim.sleep(cost).await;
        inner.link_bytes.set(inner.link_bytes.get() + bytes);
        let (capacity, overflow) = inner.bounds[endpoint];
        match inner.pools[endpoint].tasks.offer(task, capacity, overflow, |t| u64::from(t.priority))
        {
            Offered::Accepted => {}
            Offered::Closed(_) => {} // experiment torn down
            Offered::Displaced(victim) => {
                // A shed copy is a failure for arbitration purposes: if
                // a hedge/reroute sibling is still live the loss is
                // silent; otherwise the Shed outcome is the task's one
                // terminal result.
                let topic = victim.topic;
                match inner.health.on_result(endpoint, victim.id, topic, true, 0.0) {
                    Verdict::Deliver { hedges, reroutes } => {
                        Self::shed_result(&inner, victim, endpoint, hedges, reroutes, capacity as f64);
                        Self::release(&inner, topic);
                    }
                    Verdict::Suppress => {}
                }
            }
        }
    }

    async fn return_result(inner: Rc<Inner>, mut result: TaskResult, endpoint: usize) {
        let bytes = result.wire_bytes();
        let cost = Self::link_cost(&inner, endpoint, bytes);
        inner.sim.sleep(cost).await;
        let hop = inner.params.submit_hop.sample_secs(&mut inner.rng.borrow_mut());
        inner.sim.sleep(hop).await;
        inner.link_bytes.set(inner.link_bytes.get() + bytes);
        // Exactly-once arbitration, after the full return path: the
        // first surviving copy wins, losers are cancelled as waste.
        let waste = result.report.compute_time.as_secs_f64()
            + result.report.wasted_time.as_secs_f64();
        match inner.health.on_result(
            endpoint,
            result.id,
            result.topic,
            result.is_failed(),
            waste,
        ) {
            Verdict::Deliver { hedges, reroutes } => {
                Self::release(&inner, result.topic);
                result.report.hedges = hedges;
                result.report.reroutes = reroutes;
                result.timing.server_result_received = Some(inner.sim.now());
                inner.returned.set(inner.returned.get() + 1);
                let _ = inner.results.send_now(result); // hetlint: allow(r15) — teardown-tolerant: the campaign driver may have dropped the results receiver
            }
            Verdict::Suppress => {}
        }
    }
}

impl Fabric for HtexExecutor {
    fn submit(&self, mut task: TaskSpec) -> Pin<Box<dyn Future<Output = ()> + '_>> {
        Box::pin(async move {
            let inner = &self.inner;
            task.timing.dispatched = Some(inner.sim.now());
            // Admission control: a refused submission still pays the
            // interchange hop (the refusal happens after the client's
            // call) and resolves to a terminal Shed outcome; it never
            // reaches the breaker layer, so nothing to unwind.
            if let Some(cfg) = inner.admission_cfgs.get(task.topic) {
                if !inner.admission.try_admit(task.topic, cfg) {
                    let hop = inner.params.submit_hop.sample_secs(&mut inner.rng.borrow_mut());
                    inner.sim.sleep(hop).await;
                    inner.submitted.set(inner.submitted.get() + 1);
                    let ep = inner.primary.get(task.topic).copied().unwrap_or(0);
                    let load = inner.admission.in_flight(task.topic) as f64;
                    Self::shed_result(inner, task, ep, 0, 0, load);
                    return;
                }
            }
            inner.gate.on_enter(task.topic);
            // Register the dispatch with the reliability layer, which
            // picks the endpoint (breaker-aware when configured).
            let endpoint = inner
                .health
                .admit(&task)
                // hetlint: allow(r5) — unrouted topic is a deployment wiring bug, not a runtime fault
                .unwrap_or_else(|| panic!("no endpoint registered for topic {}", task.topic));
            // The client pays the hop to the interchange plus the
            // interchange's serialization pass over the payload.
            let bytes = task.wire_bytes();
            let hop = inner.params.submit_hop.sample(&mut inner.rng.borrow_mut());
            let ser = bytes as f64 / inner.params.interchange_bw;
            inner.sim.sleep(hetflow_sim::time::secs(hop + ser)).await;
            inner.submitted.set(inner.submitted.get() + 1);
            let id = task.id;
            let topic = task.topic;
            let input_bytes = task.args.iter().map(Arg::data_bytes).sum();
            let timing = task.timing;
            // Hedge watchdog (see the FnX fabric for the rationale).
            if let Some(delay) = inner.health.hedge_delay(topic) {
                let inner2 = Rc::clone(inner);
                inner.sim.spawn_detached(async move {
                    loop {
                        inner2.sim.sleep(delay).await;
                        let Some((spec, to)) = inner2.health.try_hedge(id, topic) else {
                            break;
                        };
                        let inner3 = Rc::clone(&inner2);
                        inner2.sim.spawn_detached(async move {
                            HtexExecutor::deliver(inner3, spec, to).await;
                        });
                    }
                });
            }
            // Deadline watchdog: hard round-trip backstop.
            if let Some(dl) = inner.health.deadline(topic) {
                let inner2 = Rc::clone(inner);
                inner.sim.spawn_detached(async move {
                    inner2.sim.sleep(dl).await;
                    if inner2.health.expire(id) {
                        let now = inner2.sim.now();
                        let actor = inner2.actors[endpoint];
                        inner2.tracer.emit(now, actor, kinds::TASK_TIMEOUT, id, dl.as_secs_f64());
                        Self::release(&inner2, topic);
                        let mut timing = timing;
                        timing.server_result_received = Some(now);
                        inner2.timed_out.set(inner2.timed_out.get() + 1);
                        inner2.returned.set(inner2.returned.get() + 1);
                        let result = TaskResult {
                            id,
                            topic,
                            output: Arg::empty(),
                            input_bytes,
                            report: WorkerReport::default(),
                            timing,
                            site: inner2.pools[endpoint].site(),
                            worker: actor,
                            outcome: TaskOutcome::Failed(TaskError::Timeout { after: dl }),
                        };
                        let _ = inner2.results.send_now(result);
                    }
                });
            }
            let inner2 = Rc::clone(inner);
            inner.sim.spawn_detached(async move {
                HtexExecutor::deliver(inner2, task, endpoint).await;
            });
        })
    }

    fn label(&self) -> &'static str {
        "htex"
    }

    fn backpressure(&self) -> Option<BackpressureGate> {
        if self.inner.gate.is_empty() {
            None
        } else {
            Some(self.inner.gate.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_store::SiteId;
    use hetflow_sim::Receiver;

    fn fixed_link(bw: f64) -> LinkParams {
        LinkParams { latency: Dist::Constant(0.005), bandwidth: bw }
    }

    fn setup(workers: usize, bw: f64) -> (Sim, HtexExecutor, Receiver<TaskResult>) {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let exec = HtexExecutor::new(
            &sim,
            HtexParams { submit_hop: Dist::Constant(0.002), interchange_bw: 1.0e8 },
            vec![HtexEndpoint {
                pool: WorkerPoolConfig::bare(SiteId(0), "theta", workers),
                topics: vec!["noop"],
                link: fixed_link(bw),
            }],
            res_tx,
            SimRng::from_seed(5),
            Tracer::disabled(),
        );
        (sim, exec, res_rx)
    }

    #[test]
    fn roundtrip_executes_task() {
        let (sim, exec, res_rx) = setup(1, 4.0e7);
        let e = exec.clone();
        sim.spawn(async move {
            e.submit(TaskSpec::noop(3, 10_000)).await;
        });
        sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, 3);
        assert!(results[0].timing.server_result_received.is_some());
        assert_eq!(exec.submitted(), 1);
        assert_eq!(exec.returned(), 1);
    }

    #[test]
    fn direct_links_are_much_faster_than_cloud_for_payloads() {
        // The same 1 MB no-op through HTEX must beat the FnX cloud path
        // by a wide margin — this is why plain Parsl remains competitive
        // when payloads are small/medium (Fig. 3 discussion).
        let (sim, exec, res_rx) = setup(1, 4.0e7);
        let e = exec.clone();
        sim.spawn(async move {
            e.submit(TaskSpec::noop(0, 1_000_000)).await;
        });
        sim.run();
        let r = &res_rx.drain_now()[0];
        let span = r.timing.server_to_worker().unwrap().as_secs_f64();
        assert!(span < 0.1, "direct 1MB hop should be tens of ms, got {span}");
    }

    #[test]
    fn payload_cost_scales_with_link_bandwidth() {
        let span_with_bw = |bw: f64| {
            let (sim, exec, res_rx) = setup(1, bw);
            let e = exec.clone();
            sim.spawn(async move {
                e.submit(TaskSpec::noop(0, 10_000_000)).await;
            });
            sim.run();
            let r = &res_rx.drain_now()[0];
            r.timing.server_to_worker().unwrap().as_secs_f64()
        };
        let fast = span_with_bw(1.0e8);
        let slow = span_with_bw(1.0e7);
        assert!(slow > 5.0 * fast, "fast {fast}, slow {slow}");
    }

    #[test]
    fn submit_cost_grows_with_payload() {
        // Without pass-by-reference the interchange serializes the whole
        // payload before the client regains control.
        let (sim, exec, _res) = setup(1, 4.0e7);
        let s = sim.clone();
        let e = exec.clone();
        let h = sim.spawn(async move {
            let t0 = s.now();
            e.submit(TaskSpec::noop(0, 1_000)).await;
            let small = (s.now() - t0).as_secs_f64();
            let t1 = s.now();
            e.submit(TaskSpec::noop(1, 50_000_000)).await;
            let large = (s.now() - t1).as_secs_f64();
            (small, large)
        });
        let (small, large) = sim.block_on(h);
        assert!(small < 0.01);
        assert!(large > 0.4, "50MB at 100MB/s ≈ 0.5s, got {large}");
    }

    #[test]
    fn multiple_endpoints_route_by_topic() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let exec = HtexExecutor::new(
            &sim,
            HtexParams::default(),
            vec![
                HtexEndpoint {
                    pool: WorkerPoolConfig::bare(SiteId(0), "cpu", 2),
                    topics: vec!["simulate"],
                    link: LinkParams::local(),
                },
                HtexEndpoint {
                    pool: WorkerPoolConfig::bare(SiteId(1), "gpu", 2),
                    topics: vec!["train", "infer"],
                    link: LinkParams::tunnel(),
                },
            ],
            res_tx,
            SimRng::from_seed(5),
            Tracer::disabled(),
        );
        let e = exec.clone();
        sim.spawn(async move {
            let mk = |id, topic: &str| {
                TaskSpec::new(id, topic, vec![], Rc::new(|_| crate::task::TaskWork::noop()))
            };
            e.submit(mk(0, "simulate")).await;
            e.submit(mk(1, "infer")).await;
        });
        sim.run();
        let mut results = res_rx.drain_now();
        results.sort_by_key(|r| r.id);
        assert_eq!(results[0].site, SiteId(0));
        assert_eq!(results[1].site, SiteId(1));
    }
}
