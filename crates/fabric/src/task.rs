//! The task model shared by all compute fabrics.
//!
//! A [`TaskSpec`] is a function invocation: a topic (task type), input
//! arguments (inline values or [`UntypedProxy`] references), and a
//! compute closure that runs on a worker. The closure does *real* work —
//! training a model, scoring molecules — and declares how long the task
//! occupies the worker in virtual time and how large its output is.
//!
//! [`TaskTiming`] carries the life-cycle stamps the paper's evaluation
//! decomposes: creation → server → dispatch → worker start → inputs
//! resolved → compute done → result received → result data ready
//! (§V-C1, §V-D).

use hetflow_store::{SiteId, UntypedProxy};
use hetflow_sim::{SimRng, SimTime, Symbol};
use std::any::Any;
use std::rc::Rc;
use std::time::Duration;

/// Unique task identifier within a run.
pub type TaskId = u64;

/// Why a task failed. Failures are normal, reportable outcomes — they
/// travel the result path like successes and reach the thinker as
/// records, mirroring how funcX/Colmena surface task exceptions to the
/// steering loop instead of aborting the campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError {
    /// Every execution attempt failed; `attempts` were made.
    ExhaustedRetries {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The task did not reach a worker (or finish) within its deadline —
    /// e.g. it was stuck behind an endpoint outage.
    Timeout {
        /// The deadline that elapsed.
        after: Duration,
    },
    /// A proxied input could not be resolved on the worker.
    ResolveFailed(String),
    /// The result (or an input) could not be placed in its store.
    PutFailed(String),
}

impl TaskError {
    /// Stable short label, used as a tracer event payload and in
    /// report bins.
    pub fn kind(&self) -> &'static str {
        match self {
            TaskError::ExhaustedRetries { .. } => "exhausted_retries",
            TaskError::Timeout { .. } => "timeout",
            TaskError::ResolveFailed(_) => "resolve_failed",
            TaskError::PutFailed(_) => "put_failed",
        }
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::ExhaustedRetries { attempts } => {
                write!(f, "exhausted {attempts} execution attempts")
            }
            TaskError::Timeout { after } => {
                write!(f, "timed out after {:.1}s", after.as_secs_f64())
            }
            TaskError::ResolveFailed(e) => write!(f, "input resolve failed: {e}"),
            TaskError::PutFailed(e) => write!(f, "store put failed: {e}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// How a task ended.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum TaskOutcome {
    /// The compute closure ran and produced its output.
    #[default]
    Success,
    /// The task failed; the result carries a placeholder output and the
    /// error. Timing/report fields still describe what actually happened
    /// (attempts made, time wasted) so failure-path accounting adds up.
    Failed(TaskError),
    /// Overload protection dropped the task before it ran: displaced
    /// from a full bounded queue or refused by the admission controller.
    /// The result carries a placeholder output and burned no compute.
    /// Distinct from `Failed` so lifecycle conservation reads
    /// `submitted == completed + failed + shed`.
    Shed,
}

impl TaskOutcome {
    /// True for failed outcomes (shed is not a failure: no attempt ran).
    pub fn is_failed(&self) -> bool {
        matches!(self, TaskOutcome::Failed(_))
    }

    /// True when the task was shed by overload protection.
    pub fn is_shed(&self) -> bool {
        matches!(self, TaskOutcome::Shed)
    }

    /// The error, if failed.
    pub fn error(&self) -> Option<&TaskError> {
        match self {
            TaskOutcome::Success | TaskOutcome::Shed => None,
            TaskOutcome::Failed(e) => Some(e),
        }
    }
}

/// Fixed wire overhead of a task envelope (serialized function body,
/// metadata, headers) in bytes.
pub const TASK_ENVELOPE_BYTES: u64 = 1_000;

/// One task argument.
#[derive(Clone)]
pub enum Arg {
    /// Value travels inline through the control plane.
    Inline {
        /// Declared serialized size.
        bytes: u64,
        /// The actual value.
        value: Rc<dyn Any>,
    },
    /// Value was placed in a store; only the reference travels.
    Proxied(UntypedProxy),
}

thread_local! {
    /// One `Rc<()>` per thread, shared by every empty argument and
    /// no-op output — placeholder values on hot paths must not
    /// allocate a fresh `Rc` per task.
    static EMPTY_PAYLOAD: Rc<dyn Any> = Rc::new(());
}

impl Arg {
    /// Builds an inline argument.
    pub fn inline<T: 'static>(value: T, bytes: u64) -> Arg {
        Arg::Inline { bytes, value: Rc::new(value) }
    }

    /// A zero-byte `()` placeholder argument sharing one per-thread
    /// allocation (poisoned submissions, default worker outputs).
    pub fn empty() -> Arg {
        Arg::Inline { bytes: 0, value: EMPTY_PAYLOAD.with(Rc::clone) }
    }

    /// Bytes this argument adds to the task envelope.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Arg::Inline { bytes, .. } => *bytes,
            Arg::Proxied(p) => p.wire_size(),
        }
    }

    /// Size of the underlying data (inline size, or the proxy target's).
    pub fn data_bytes(&self) -> u64 {
        match self {
            Arg::Inline { bytes, .. } => *bytes,
            Arg::Proxied(p) => p.target_size(),
        }
    }

    /// True for proxied arguments.
    pub fn is_proxied(&self) -> bool {
        matches!(self, Arg::Proxied(_))
    }
}

/// Argument list of a [`TaskSpec`], with inline storage for small
/// lists.
///
/// Almost every task in the workloads carries zero to two arguments;
/// up to [`Args::INLINE`] of them live directly in the spec, so
/// building, cloning (the hedge/reroute path re-issues a clone per
/// speculative dispatch) and dropping a typical task touches no heap
/// `Vec` at all. Longer lists spill into a `Vec` transparently.
#[derive(Clone, Default)]
pub struct Args {
    inline: [Option<Arg>; Self::INLINE],
    inline_len: u8,
    spill: Vec<Arg>,
}

impl Args {
    /// Arguments stored without heap allocation.
    pub const INLINE: usize = 4;

    /// An empty argument list.
    pub fn new() -> Self {
        Args::default()
    }

    /// Appends an argument.
    pub fn push(&mut self, arg: Arg) {
        let at = usize::from(self.inline_len);
        if at < Self::INLINE {
            self.inline[at] = Some(arg);
            self.inline_len += 1;
        } else {
            self.spill.push(arg);
        }
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        usize::from(self.inline_len) + self.spill.len()
    }

    /// True when no arguments are present.
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0 && self.spill.is_empty()
    }

    /// The `i`-th argument, if present.
    pub fn get(&self, i: usize) -> Option<&Arg> {
        if i < usize::from(self.inline_len) {
            self.inline[i].as_ref()
        } else {
            self.spill.get(i - usize::from(self.inline_len))
        }
    }

    /// Arguments in order.
    pub fn iter(&self) -> ArgsIter<'_> {
        ArgsIter { args: self, at: 0 }
    }
}

/// Iterator over an [`Args`] list (allocation-free, unlike a boxed
/// `dyn Iterator`, because argument resolution runs once per task).
pub struct ArgsIter<'a> {
    args: &'a Args,
    at: usize,
}

impl<'a> Iterator for ArgsIter<'a> {
    type Item = &'a Arg;
    fn next(&mut self) -> Option<&'a Arg> {
        let v = self.args.get(self.at)?;
        self.at += 1;
        Some(v)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.args.len() - self.at;
        (left, Some(left))
    }
}

impl From<Vec<Arg>> for Args {
    fn from(v: Vec<Arg>) -> Args {
        v.into_iter().collect()
    }
}

impl From<Arg> for Args {
    fn from(a: Arg) -> Args {
        let mut args = Args::new();
        args.push(a);
        args
    }
}

impl FromIterator<Arg> for Args {
    fn from_iter<I: IntoIterator<Item = Arg>>(iter: I) -> Args {
        let mut args = Args::new();
        for a in iter {
            args.push(a);
        }
        args
    }
}

impl<'a> IntoIterator for &'a Args {
    type Item = &'a Arg;
    type IntoIter = ArgsIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl std::ops::Index<usize> for Args {
    type Output = Arg;
    fn index(&self, i: usize) -> &Arg {
        self.get(i)
            // hetlint: allow(r5) — out-of-bounds argument index is a task wiring bug
            .unwrap_or_else(|| panic!("argument index {i} out of bounds (len {})", self.len()))
    }
}

/// What the worker observed while resolving inputs and computing.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerReport {
    /// Time spent resolving proxied inputs.
    pub resolve_wait: Duration,
    /// Time the compute occupied the worker.
    pub compute_time: Duration,
    /// Time spent (de)serializing on the worker.
    pub ser_time: Duration,
    /// Number of proxied inputs that were already local (prefetched).
    pub local_inputs: u32,
    /// Number of proxied inputs that required a wait.
    pub remote_inputs: u32,
    /// Execution attempts (1 = no failures; >1 means the worker retried
    /// after injected failures).
    pub attempts: u32,
    /// Time lost to failed attempts (partial compute + restart delays +
    /// retry backoff). Zero for clean executions.
    pub wasted_time: Duration,
    /// Speculative (hedged) copies the fabric issued for this task.
    pub hedges: u32,
    /// Times the fabric re-dispatched this task after a delivery
    /// timeout.
    pub reroutes: u32,
}

/// Execution context handed to a task's compute closure.
pub struct TaskCtx<'a> {
    /// Resolved input values, in argument order. Borrowed from the
    /// worker's reusable buffer — the per-task `Vec` allocation the
    /// old owned field forced is gone.
    pub inputs: &'a [Rc<dyn Any>],
    /// Worker-local random stream.
    pub rng: &'a mut SimRng,
    /// The site the worker runs on.
    pub site: SiteId,
}

impl TaskCtx<'_> {
    /// Downcasts input `i` to `T`, panicking with a useful message on
    /// type mismatch (a task wiring bug, not a runtime condition).
    pub fn input<T: 'static>(&self, i: usize) -> Rc<T> {
        Rc::clone(&self.inputs[i])
            .downcast::<T>()
            // hetlint: allow(r5) — type mismatch is a task wiring bug, not a runtime fault
            .unwrap_or_else(|_| panic!("task input {i} has unexpected type"))
    }
}

/// Output of a compute closure.
pub struct TaskWork {
    /// Virtual time the task occupies the worker.
    pub compute_time: Duration,
    /// The produced value.
    pub output: Rc<dyn Any>,
    /// Declared serialized size of the output.
    pub output_size: u64,
}

impl TaskWork {
    /// Convenience constructor.
    pub fn new<T: 'static>(output: T, output_size: u64, compute_time: Duration) -> Self {
        TaskWork { compute_time, output: Rc::new(output), output_size }
    }

    /// A no-op result: empty output, zero compute (the synthetic tasks
    /// of §V-C). The output `Rc` is shared per thread, not allocated
    /// per call.
    pub fn noop() -> Self {
        TaskWork {
            compute_time: Duration::ZERO,
            output: EMPTY_PAYLOAD.with(Rc::clone),
            output_size: 0,
        }
    }
}

/// The compute closure type. Runs on the worker; must be deterministic
/// given the context RNG.
pub type TaskFn = Rc<dyn Fn(&mut TaskCtx<'_>) -> TaskWork>;

/// Life-cycle stamps of one task. `None` means the stage has not
/// happened (or does not exist on that fabric).
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskTiming {
    /// Thinker created the task.
    pub created: Option<SimTime>,
    /// Thinker finished serializing (incl. proxying) and queued it.
    pub submitted: Option<SimTime>,
    /// Task server received it.
    pub server_received: Option<SimTime>,
    /// Task server handed it to the compute fabric.
    pub dispatched: Option<SimTime>,
    /// Worker began the task.
    pub worker_started: Option<SimTime>,
    /// All proxied inputs resolved on the worker.
    pub inputs_resolved: Option<SimTime>,
    /// Compute finished on the worker.
    pub compute_finished: Option<SimTime>,
    /// Result left the worker.
    pub result_dispatched: Option<SimTime>,
    /// Task server received the result.
    pub server_result_received: Option<SimTime>,
    /// Thinker was notified of completion.
    pub thinker_notified: Option<SimTime>,
    /// Thinker finished resolving the result data.
    pub result_ready: Option<SimTime>,
}

impl TaskTiming {
    fn span(a: Option<SimTime>, b: Option<SimTime>) -> Option<Duration> {
        Some(b? - a?)
    }

    /// Thinker → task server communication time.
    pub fn thinker_to_server(&self) -> Option<Duration> {
        Self::span(self.submitted, self.server_received)
    }

    /// Task server → worker-start communication time.
    pub fn server_to_worker(&self) -> Option<Duration> {
        Self::span(self.dispatched, self.worker_started)
    }

    /// Time on the worker (deserialize + resolve + compute + serialize).
    pub fn time_on_worker(&self) -> Option<Duration> {
        Self::span(self.worker_started, self.result_dispatched)
    }

    /// Worker → task server return communication.
    pub fn worker_to_server(&self) -> Option<Duration> {
        Self::span(self.result_dispatched, self.server_result_received)
    }

    /// Task server → thinker notification.
    pub fn server_to_thinker(&self) -> Option<Duration> {
        Self::span(self.server_result_received, self.thinker_notified)
    }

    /// Completion → thinker-notified (the paper's "reaction time"
    /// notification component, Fig. 5 top).
    pub fn notification(&self) -> Option<Duration> {
        Self::span(self.compute_finished, self.thinker_notified)
    }

    /// Thinker-notified → result data available (Fig. 5 bottom).
    pub fn data_wait(&self) -> Option<Duration> {
        Self::span(self.thinker_notified, self.result_ready)
    }

    /// Full round trip: created → result data ready.
    pub fn lifetime(&self) -> Option<Duration> {
        Self::span(self.created, self.result_ready.or(self.thinker_notified))
    }

    /// Total overhead: lifetime minus compute (the paper's Fig. 7b
    /// metric: "time between when a task was created and when the result
    /// was read that is not the task running").
    pub fn overhead(&self) -> Option<Duration> {
        let lifetime = self.lifetime()?;
        let compute = Self::span(self.inputs_resolved, self.compute_finished)?;
        Some(lifetime.saturating_sub(compute))
    }
}

/// A task ready for submission.
///
/// Cloning is cheap (the compute closure is an `Rc`) and exists for the
/// reliability layer: a hedged or rerouted dispatch re-issues a clone of
/// the original spec.
#[derive(Clone)]
pub struct TaskSpec {
    /// Unique id.
    pub id: TaskId,
    /// Task type, e.g. `"simulate"`, `"train"`, `"infer"`, `"sample"`.
    pub topic: Symbol,
    /// Input arguments (inline up to [`Args::INLINE`]).
    pub args: Args,
    /// The compute closure.
    pub compute: TaskFn,
    /// Accumulated serialization time so far (thinker/server side).
    pub ser_time: Duration,
    /// Life-cycle stamps.
    pub timing: TaskTiming,
    /// Set when the task was poisoned before reaching a worker (e.g. a
    /// submit-side proxy put failed). The worker short-circuits: no
    /// resolve, no compute — the error rides the normal result path.
    pub failed: Option<TaskError>,
    /// Shedding priority: higher keeps its queue slot longer under
    /// [`hetflow_sim::OverflowPolicy::ShedLowestPriority`]. Campaign
    /// tasks default to [`TaskSpec::PRIORITY_NORMAL`]; background storm
    /// traffic runs at [`TaskSpec::PRIORITY_LOW`] so overload sheds it
    /// first.
    pub priority: u8,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("id", &self.id)
            .field("topic", &self.topic)
            .field("args", &self.args.len())
            .field("wire_bytes", &self.wire_bytes())
            .finish_non_exhaustive()
    }
}

impl TaskSpec {
    /// Default shedding priority of campaign tasks.
    pub const PRIORITY_NORMAL: u8 = 100;
    /// Priority of expendable background traffic (chaos storms): the
    /// first thing a full queue sheds.
    pub const PRIORITY_LOW: u8 = 0;

    /// Creates a task with the given topic, args and closure.
    pub fn new(
        id: TaskId,
        topic: impl Into<Symbol>,
        args: impl Into<Args>,
        compute: TaskFn,
    ) -> Self {
        TaskSpec {
            id,
            topic: topic.into(),
            args: args.into(),
            compute,
            ser_time: Duration::ZERO,
            timing: TaskTiming::default(),
            failed: None,
            priority: Self::PRIORITY_NORMAL,
        }
    }

    /// Builder: sets the shedding priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// A no-op task with one inline payload of `bytes` — the synthetic
    /// workload of §V-C.
    ///
    /// Issue-path allocation count: zero. The payload value, the
    /// compute closure, and the interned topic are each created once
    /// per thread and shared by every no-op issued after (the old code
    /// built a dead `vec![0u8; 0]`, a fresh `Rc` payload, and a fresh
    /// `Rc` closure per call — per-task garbage on the benchmark's
    /// hottest path).
    pub fn noop(id: TaskId, bytes: u64) -> Self {
        thread_local! {
            static NOOP_FN: TaskFn = Rc::new(|_ctx| TaskWork::noop());
        }
        static NOOP_TOPIC: std::sync::OnceLock<Symbol> = std::sync::OnceLock::new();
        let topic = *NOOP_TOPIC.get_or_init(|| Symbol::intern("noop"));
        TaskSpec::new(
            id,
            topic,
            Arg::Inline { bytes, value: EMPTY_PAYLOAD.with(Rc::clone) },
            NOOP_FN.with(Rc::clone),
        )
    }

    /// Total wire size of the serialized task envelope.
    pub fn wire_bytes(&self) -> u64 {
        TASK_ENVELOPE_BYTES + self.args.iter().map(Arg::wire_bytes).sum::<u64>()
    }
}

/// A completed task returning to the thinker.
pub struct TaskResult {
    /// Task id.
    pub id: TaskId,
    /// Task topic.
    pub topic: Symbol,
    /// The output (inline or proxied, per the result policy).
    pub output: Arg,
    /// Total input data size (bytes of underlying data, not wire size).
    pub input_bytes: u64,
    /// Worker-side observations.
    pub report: WorkerReport,
    /// Life-cycle stamps (continued from the spec's).
    pub timing: TaskTiming,
    /// Which site executed the task.
    pub site: SiteId,
    /// Worker label, e.g. `"theta/3"`.
    pub worker: Symbol,
    /// Whether the task succeeded or failed. Failed results carry a
    /// zero-byte placeholder output.
    pub outcome: TaskOutcome,
}

impl std::fmt::Debug for TaskResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskResult")
            .field("id", &self.id)
            .field("topic", &self.topic)
            .field("site", &self.site)
            .field("worker", &self.worker)
            .finish_non_exhaustive()
    }
}

impl TaskResult {
    /// Wire size of the result envelope.
    pub fn wire_bytes(&self) -> u64 {
        TASK_ENVELOPE_BYTES + self.output.wire_bytes()
    }

    /// True when the task failed (see [`TaskOutcome`]).
    pub fn is_failed(&self) -> bool {
        self.outcome.is_failed()
    }

    /// True when overload protection shed the task before it ran.
    pub fn is_shed(&self) -> bool {
        self.outcome.is_shed()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // timing fixtures read best as sequential stamps
mod tests {
    use super::*;

    #[test]
    fn inline_arg_sizes() {
        let a = Arg::inline(vec![1u8, 2, 3], 1234);
        assert_eq!(a.wire_bytes(), 1234);
        assert_eq!(a.data_bytes(), 1234);
        assert!(!a.is_proxied());
    }

    #[test]
    fn args_inline_and_spill_preserve_order() {
        let mut args = Args::new();
        assert!(args.is_empty());
        for i in 0..6u64 {
            args.push(Arg::inline(i, i * 10));
        }
        assert_eq!(args.len(), 6);
        let sizes: Vec<u64> = args.iter().map(Arg::wire_bytes).collect();
        assert_eq!(sizes, [0, 10, 20, 30, 40, 50]);
        assert_eq!(args[3].wire_bytes(), 30);
        assert_eq!(args.get(5).map(Arg::wire_bytes), Some(50));
        assert_eq!(args.get(6).map(Arg::wire_bytes), None);
        // &Args iterates like a slice would.
        let mut n = 0;
        for a in &args {
            assert_eq!(a.wire_bytes(), n * 10);
            n += 1;
        }
        assert_eq!(n, 6);
    }

    #[test]
    fn args_from_vec_and_clone() {
        let args: Args = vec![Arg::inline((), 1), Arg::inline((), 2)].into();
        assert_eq!(args.len(), 2);
        let cloned = args.clone();
        assert_eq!(cloned.iter().map(Arg::wire_bytes).sum::<u64>(), 3);
    }

    #[test]
    fn noop_shares_payload_and_closure() {
        let a = TaskSpec::noop(1, 100);
        let b = TaskSpec::noop(2, 200);
        assert!(Rc::ptr_eq(&a.compute, &b.compute), "one closure per thread");
        let payload = |t: &TaskSpec| match &t.args[0] {
            Arg::Inline { value, .. } => Rc::clone(value),
            Arg::Proxied(_) => unreachable!("noop args are inline"),
        };
        assert!(Rc::ptr_eq(&payload(&a), &payload(&b)), "one payload per thread");
        assert_eq!(a.args[0].wire_bytes(), 100);
        assert_eq!(b.args[0].wire_bytes(), 200);
    }

    #[test]
    fn noop_task_shape() {
        let t = TaskSpec::noop(1, 10_000);
        assert_eq!(t.topic, "noop");
        assert_eq!(t.wire_bytes(), TASK_ENVELOPE_BYTES + 10_000);
        let mut rng = SimRng::from_seed(1);
        let inputs: Vec<Rc<dyn Any>> = vec![Rc::new(())];
        let mut ctx = TaskCtx { inputs: &inputs, rng: &mut rng, site: SiteId(0) };
        let w = (t.compute)(&mut ctx);
        assert_eq!(w.compute_time, Duration::ZERO);
        assert_eq!(w.output_size, 0);
    }

    #[test]
    fn timing_spans() {
        let mut t = TaskTiming::default();
        assert!(t.thinker_to_server().is_none());
        t.created = Some(SimTime::from_secs(0));
        t.submitted = Some(SimTime::from_secs(1));
        t.server_received = Some(SimTime::from_secs(2));
        t.dispatched = Some(SimTime::from_secs(3));
        t.worker_started = Some(SimTime::from_secs(5));
        t.inputs_resolved = Some(SimTime::from_secs(6));
        t.compute_finished = Some(SimTime::from_secs(16));
        t.result_dispatched = Some(SimTime::from_secs(17));
        t.server_result_received = Some(SimTime::from_secs(18));
        t.thinker_notified = Some(SimTime::from_secs(19));
        t.result_ready = Some(SimTime::from_secs(21));
        assert_eq!(t.thinker_to_server(), Some(Duration::from_secs(1)));
        assert_eq!(t.server_to_worker(), Some(Duration::from_secs(2)));
        assert_eq!(t.time_on_worker(), Some(Duration::from_secs(12)));
        assert_eq!(t.worker_to_server(), Some(Duration::from_secs(1)));
        assert_eq!(t.notification(), Some(Duration::from_secs(3)));
        assert_eq!(t.data_wait(), Some(Duration::from_secs(2)));
        assert_eq!(t.lifetime(), Some(Duration::from_secs(21)));
        // overhead = 21 - 10 (compute) = 11
        assert_eq!(t.overhead(), Some(Duration::from_secs(11)));
    }

    #[test]
    fn lifetime_falls_back_to_notification() {
        let mut t = TaskTiming::default();
        t.created = Some(SimTime::from_secs(0));
        t.thinker_notified = Some(SimTime::from_secs(4));
        assert_eq!(t.lifetime(), Some(Duration::from_secs(4)));
    }

    #[test]
    fn task_ctx_input_downcast() {
        let mut rng = SimRng::from_seed(1);
        let inputs: Vec<Rc<dyn Any>> = vec![Rc::new(42u32), Rc::new("hi")];
        let ctx = TaskCtx { inputs: &inputs, rng: &mut rng, site: SiteId(0) };
        assert_eq!(*ctx.input::<u32>(0), 42);
        assert_eq!(*ctx.input::<&str>(1), "hi");
    }

    #[test]
    #[should_panic(expected = "unexpected type")]
    fn task_ctx_wrong_type_panics() {
        let mut rng = SimRng::from_seed(1);
        let inputs: Vec<Rc<dyn Any>> = vec![Rc::new(42u32)];
        let ctx = TaskCtx { inputs: &inputs, rng: &mut rng, site: SiteId(0) };
        let _ = ctx.input::<String>(0);
    }
}
