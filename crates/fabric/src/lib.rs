//! # hetflow-fabric — compute fabrics
//!
//! Two ways of getting a [`task::TaskSpec`] onto a remote worker and its
//! result back (§IV-B, §V-B of the paper):
//!
//! * [`FnXExecutor`] — the cloud-managed federated FaaS (FuncX model):
//!   submissions travel through a cloud service with tiered payload
//!   storage (fast KV ≤ 20 kB, object store above, hard 10 MB cap) and
//!   outbound-only endpoint connections. No open ports at the resources.
//! * [`HtexExecutor`] — the direct-connection baseline (Parsl HTEX
//!   model): an interchange forwards tasks over direct TCP links, which
//!   requires ports/tunnels but moves payloads at link bandwidth.
//!
//! Both feed [`worker::WorkerPool`]s that resolve proxied inputs, run
//! the (real) compute closure for its declared virtual duration, apply
//! the result proxy policy, and return a [`task::TaskResult`] stamped
//! with the full life-cycle timing the paper's figures decompose.
//!
//! ```
//! use hetflow_fabric::{EndpointSpec, Fabric, FnXExecutor, FnXParams,
//!                      TaskSpec, WorkerPoolConfig};
//! use hetflow_store::SiteId;
//! use hetflow_sim::{channel, Sim, SimRng, Tracer};
//! use std::rc::Rc;
//!
//! let sim = Sim::new();
//! let (results_tx, results_rx) = channel();
//! let fabric = FnXExecutor::new(
//!     &sim,
//!     FnXParams::default(),
//!     vec![EndpointSpec::reliable(
//!         WorkerPoolConfig::bare(SiteId(0), "theta", 2),
//!         vec!["noop"],
//!     )],
//!     results_tx,
//!     SimRng::from_seed(1),
//!     Tracer::disabled(),
//! );
//! let f = Rc::new(fabric);
//! let f2 = Rc::clone(&f);
//! sim.spawn(async move { f2.submit(TaskSpec::noop(0, 10_000)).await });
//! sim.run();
//! assert_eq!(results_rx.drain_now().len(), 1);
//! ```

pub mod fabric;
pub mod faas;
pub mod health;
pub mod htex;
pub mod provision;
pub mod reliability;
pub mod ser;
pub mod task;
pub mod worker;

pub use fabric::Fabric;
pub use faas::{EndpointSpec, FnXExecutor, FnXParams};
pub use health::{
    BreakerConfig, HedgeConfig, ReliabilityLayer, ReliabilityPolicies, ReliabilityPolicy,
};
pub use htex::{HtexEndpoint, HtexExecutor, HtexParams, LinkParams};
pub use provision::{ProvisionReport, ProvisionSpec, Provisioner};
pub use reliability::chaos::{ChaosAction, ChaosSpec, ChaosTargets, STORM_ID_BASE};
pub use reliability::overload::{
    AdmissionConfig, AdmissionController, BackpressureConfig, BackpressureGate,
};
pub use reliability::{Connectivity, FailureModel, Knob, RetryPolicies, RetryPolicy};
pub use ser::SerModel;
pub use task::{
    Arg, Args, TaskCtx, TaskError, TaskFn, TaskId, TaskOutcome, TaskResult, TaskSpec, TaskTiming,
    TaskWork, WorkerReport, TASK_ENVELOPE_BYTES,
};
pub use worker::{WorkerPool, WorkerPoolConfig};
