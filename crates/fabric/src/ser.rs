//! Serialization cost model.
//!
//! Python workflow stacks pay a pickle/unpickle pass at every hop
//! (thinker, task server, worker). Fig. 3 shows this "serialization
//! time" as its own bar; the point of proxying is that it becomes
//! size-independent because only the reference is pickled.

use hetflow_sim::{Dist, SimRng};
use std::time::Duration;

/// Cost of one serialize or deserialize pass over a payload.
#[derive(Clone, Debug)]
pub struct SerModel {
    /// Fixed per-pass cost (interpreter overhead).
    pub per_op: Dist,
    /// Payload throughput in bytes/s (pickle speed).
    pub throughput: f64,
}

impl SerModel {
    /// Calibration for a CPython pickle on a login-node core:
    /// ~0.3 ms fixed + ~120 MB/s streaming.
    pub fn python_pickle() -> Self {
        SerModel {
            per_op: Dist::LogNormal { median: 0.0003, sigma: 0.3 },
            throughput: 1.2e8,
        }
    }

    /// A zero-cost model (useful in unit tests).
    pub fn free() -> Self {
        SerModel { per_op: Dist::Constant(0.0), throughput: f64::INFINITY }
    }

    /// Cost of one pass over `bytes`.
    pub fn cost(&self, rng: &mut SimRng, bytes: u64) -> Duration {
        let fixed = self.per_op.sample(rng);
        hetflow_sim::time::secs(fixed + bytes as f64 / self.throughput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_size() {
        let m = SerModel { per_op: Dist::Constant(0.001), throughput: 1e8 };
        let mut rng = SimRng::from_seed(1);
        let small = m.cost(&mut rng, 1_000);
        let large = m.cost(&mut rng, 100_000_000);
        assert!(small < Duration::from_millis(2));
        assert!((large.as_secs_f64() - 1.001).abs() < 1e-9);
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = SerModel::free();
        let mut rng = SimRng::from_seed(1);
        assert_eq!(m.cost(&mut rng, u64::MAX), Duration::ZERO);
    }

    #[test]
    fn python_pickle_reasonable() {
        let m = SerModel::python_pickle();
        let mut rng = SimRng::from_seed(1);
        let c = m.cost(&mut rng, 10_000_000); // 10 MB
        assert!(c > Duration::from_millis(50) && c < Duration::from_millis(300), "{c:?}");
    }
}
