//! Property-based tests of fabric invariants: no task is lost, stamps
//! are monotone, and both fabrics agree on *what* is computed (they may
//! only differ on *when*).

use hetflow_fabric::{
    Arg, EndpointSpec, Fabric, FnXExecutor, FnXParams, HtexEndpoint, HtexExecutor, HtexParams,
    LinkParams, TaskSpec, TaskWork, WorkerPoolConfig,
};
use hetflow_store::SiteId;
use hetflow_sim::{channel, Receiver, Sim, SimRng, Tracer};
use proptest::prelude::*;
use std::rc::Rc;
use std::time::Duration;

const SITE: SiteId = SiteId(0);

fn mk_task(id: u64, payload_kb: u64, compute_ms: u64) -> TaskSpec {
    let mut t = TaskSpec::new(
        id,
        "noop",
        vec![Arg::inline(id, payload_kb * 1_000)],
        Rc::new(move |ctx| {
            let v = *ctx.input::<u64>(0);
            TaskWork::new(v * 2, 100, Duration::from_millis(compute_ms))
        }),
    );
    t.timing.created = Some(hetflow_sim::SimTime::ZERO);
    t
}

fn run_fabric(
    fnx: bool,
    workers: usize,
    tasks: &[(u64, u64)],
) -> Vec<hetflow_fabric::TaskResult> {
    let sim = Sim::new();
    let (res_tx, res_rx): (_, Receiver<hetflow_fabric::TaskResult>) = channel();
    let pool = WorkerPoolConfig::bare(SITE, "w", workers);
    let fabric: Rc<dyn Fabric> = if fnx {
        Rc::new(FnXExecutor::new(
            &sim,
            FnXParams::default(),
            vec![EndpointSpec::reliable(pool, vec!["noop"])],
            res_tx,
            SimRng::from_seed(7),
            Tracer::disabled(),
        ))
    } else {
        Rc::new(HtexExecutor::new(
            &sim,
            HtexParams::default(),
            vec![HtexEndpoint { pool, topics: vec!["noop"], link: LinkParams::local() }],
            res_tx,
            SimRng::from_seed(7),
            Tracer::disabled(),
        ))
    };
    let tasks = tasks.to_vec();
    let f = Rc::clone(&fabric);
    sim.spawn(async move {
        for (i, (kb, ms)) in tasks.into_iter().enumerate() {
            f.submit(mk_task(i as u64, kb.min(8_000), ms)).await;
        }
    });
    sim.run();
    res_rx.drain_now()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every submitted task comes back exactly once, with the right
    /// output, on both fabrics.
    #[test]
    fn no_task_lost_or_duplicated(
        fnx in any::<bool>(),
        workers in 1usize..6,
        tasks in prop::collection::vec((1u64..500, 1u64..2_000), 1..25),
    ) {
        let results = run_fabric(fnx, workers, &tasks);
        prop_assert_eq!(results.len(), tasks.len());
        let mut ids: Vec<u64> = results.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), tasks.len());
        for r in &results {
            let out = match &r.output {
                Arg::Inline { value, .. } => *Rc::clone(value).downcast::<u64>().unwrap(),
                Arg::Proxied(_) => unreachable!("no result policy"),
            };
            prop_assert_eq!(out, r.id * 2);
        }
    }

    /// Life-cycle stamps are monotone on every result.
    #[test]
    fn stamps_are_monotone(
        fnx in any::<bool>(),
        tasks in prop::collection::vec((1u64..500, 1u64..2_000), 1..15),
    ) {
        let results = run_fabric(fnx, 2, &tasks);
        for r in &results {
            let t = &r.timing;
            let stamps = [
                t.dispatched,
                t.worker_started,
                t.inputs_resolved,
                t.compute_finished,
                t.result_dispatched,
                t.server_result_received,
            ];
            for pair in stamps.windows(2) {
                let (a, b) = (pair[0].unwrap(), pair[1].unwrap());
                prop_assert!(a <= b, "{a:?} > {b:?}");
            }
        }
    }

    /// Worker time accounts for at least the declared compute time.
    #[test]
    fn worker_time_covers_compute(
        compute_ms in prop::collection::vec(1u64..5_000, 1..10),
    ) {
        let tasks: Vec<(u64, u64)> = compute_ms.iter().map(|&ms| (1, ms)).collect();
        let results = run_fabric(true, 3, &tasks);
        for r in &results {
            let on_worker = r.timing.time_on_worker().unwrap();
            prop_assert!(
                on_worker >= r.report.compute_time,
                "{on_worker:?} < {:?}",
                r.report.compute_time
            );
        }
    }

    /// With one worker, compute windows never overlap (mutual
    /// exclusion of the resource).
    #[test]
    fn single_worker_serializes_compute(
        tasks in prop::collection::vec((1u64..100, 10u64..500), 2..10),
    ) {
        let results = run_fabric(false, 1, &tasks);
        let mut windows: Vec<(hetflow_sim::SimTime, hetflow_sim::SimTime)> = results
            .iter()
            .map(|r| (r.timing.worker_started.unwrap(), r.timing.result_dispatched.unwrap()))
            .collect();
        windows.sort();
        for pair in windows.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }
}
