//! Property-based tests of fabric invariants: no task is lost, stamps
//! are monotone, and both fabrics agree on *what* is computed (they may
//! only differ on *when*).

use hetflow_fabric::{
    Arg, BreakerConfig, ChaosAction, ChaosSpec, EndpointSpec, Fabric, FnXExecutor, FnXParams,
    HtexEndpoint, HtexExecutor, HtexParams, LinkParams, ReliabilityPolicies, ReliabilityPolicy,
    TaskSpec, TaskWork, WorkerPoolConfig,
};
use hetflow_store::SiteId;
use hetflow_sim::{channel, Dist, Receiver, Sim, SimRng, SimTime, Tracer};
use proptest::prelude::*;
use std::rc::Rc;
use std::time::Duration;

const SITE: SiteId = SiteId(0);

fn mk_task(id: u64, payload_kb: u64, compute_ms: u64) -> TaskSpec {
    let mut t = TaskSpec::new(
        id,
        "noop",
        vec![Arg::inline(id, payload_kb * 1_000)],
        Rc::new(move |ctx| {
            let v = *ctx.input::<u64>(0);
            TaskWork::new(v * 2, 100, Duration::from_millis(compute_ms))
        }),
    );
    t.timing.created = Some(hetflow_sim::SimTime::ZERO);
    t
}

fn run_fabric(
    fnx: bool,
    workers: usize,
    tasks: &[(u64, u64)],
) -> Vec<hetflow_fabric::TaskResult> {
    let sim = Sim::new();
    let (res_tx, res_rx): (_, Receiver<hetflow_fabric::TaskResult>) = channel();
    let pool = WorkerPoolConfig::bare(SITE, "w", workers);
    let fabric: Rc<dyn Fabric> = if fnx {
        Rc::new(FnXExecutor::new(
            &sim,
            FnXParams::default(),
            vec![EndpointSpec::reliable(pool, vec!["noop"])],
            res_tx,
            SimRng::from_seed(7),
            Tracer::disabled(),
        ))
    } else {
        Rc::new(HtexExecutor::new(
            &sim,
            HtexParams::default(),
            vec![HtexEndpoint { pool, topics: vec!["noop"], link: LinkParams::local() }],
            res_tx,
            SimRng::from_seed(7),
            Tracer::disabled(),
        ))
    };
    let tasks = tasks.to_vec();
    let f = Rc::clone(&fabric);
    sim.spawn(async move {
        for (i, (kb, ms)) in tasks.into_iter().enumerate() {
            f.submit(mk_task(i as u64, kb.min(8_000), ms)).await;
        }
    });
    sim.run();
    res_rx.drain_now()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every submitted task comes back exactly once, with the right
    /// output, on both fabrics.
    #[test]
    fn no_task_lost_or_duplicated(
        fnx in any::<bool>(),
        workers in 1usize..6,
        tasks in prop::collection::vec((1u64..500, 1u64..2_000), 1..25),
    ) {
        let results = run_fabric(fnx, workers, &tasks);
        prop_assert_eq!(results.len(), tasks.len());
        let mut ids: Vec<u64> = results.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), tasks.len());
        for r in &results {
            let out = match &r.output {
                Arg::Inline { value, .. } => *Rc::clone(value).downcast::<u64>().unwrap(),
                Arg::Proxied(_) => unreachable!("no result policy"),
            };
            prop_assert_eq!(out, r.id * 2);
        }
    }

    /// Life-cycle stamps are monotone on every result.
    #[test]
    fn stamps_are_monotone(
        fnx in any::<bool>(),
        tasks in prop::collection::vec((1u64..500, 1u64..2_000), 1..15),
    ) {
        let results = run_fabric(fnx, 2, &tasks);
        for r in &results {
            let t = &r.timing;
            let stamps = [
                t.dispatched,
                t.worker_started,
                t.inputs_resolved,
                t.compute_finished,
                t.result_dispatched,
                t.server_result_received,
            ];
            for pair in stamps.windows(2) {
                let (a, b) = (pair[0].unwrap(), pair[1].unwrap());
                prop_assert!(a <= b, "{a:?} > {b:?}");
            }
        }
    }

    /// Worker time accounts for at least the declared compute time.
    #[test]
    fn worker_time_covers_compute(
        compute_ms in prop::collection::vec(1u64..5_000, 1..10),
    ) {
        let tasks: Vec<(u64, u64)> = compute_ms.iter().map(|&ms| (1, ms)).collect();
        let results = run_fabric(true, 3, &tasks);
        for r in &results {
            let on_worker = r.timing.time_on_worker().unwrap();
            prop_assert!(
                on_worker >= r.report.compute_time,
                "{on_worker:?} < {:?}",
                r.report.compute_time
            );
        }
    }

    /// With one worker, compute windows never overlap (mutual
    /// exclusion of the resource).
    #[test]
    fn single_worker_serializes_compute(
        tasks in prop::collection::vec((1u64..100, 10u64..500), 2..10),
    ) {
        let results = run_fabric(false, 1, &tasks);
        let mut windows: Vec<(hetflow_sim::SimTime, hetflow_sim::SimTime)> = results
            .iter()
            .map(|r| (r.timing.worker_started.unwrap(), r.timing.result_dispatched.unwrap()))
            .collect();
        windows.sort();
        for pair in windows.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }
}

// --- Chaos-engine invariants -----------------------------------------------

/// Decodes one generated `(kind, a, b, c)` tuple into a scripted fault
/// targeting one of two endpoints/pools. The vendored proptest has no
/// enum strategies, so the mapping is done by hand — every tuple decodes
/// to a valid action, so the full generator space is exercised.
fn decode_action(kind: u64, a: u64, b: u64, c: u64) -> ChaosAction {
    let endpoint = (a % 2) as usize;
    let at = SimTime::from_secs(1 + b % 120);
    let duration = Duration::from_secs(1 + c % 60);
    match kind % 6 {
        0 => ChaosAction::Flap {
            endpoint,
            start: at,
            up: Dist::Uniform { lo: 1.0, hi: 2.0 + (c % 20) as f64 },
            down: Dist::Uniform { lo: 0.5, hi: 1.0 + (c % 10) as f64 },
            cycles: 1 + (c % 3) as u32,
        },
        1 => ChaosAction::Kill { endpoint, at },
        2 => ChaosAction::Brownout { endpoint, at, duration, factor: 2.0 + (c % 6) as f64 },
        3 => ChaosAction::Straggle { pool: endpoint, at, duration, factor: 2.0 + (c % 3) as f64 },
        4 => ChaosAction::CrashStorm { pool: endpoint, at, duration, prob: (c % 90) as f64 / 100.0 },
        _ => ChaosAction::Degrade { at, duration, factor: 2.0 + (c % 3) as f64 },
    }
}

/// Runs `n_tasks` through a two-endpoint FnX fabric (breaker, failover,
/// and the hard deadline backstop) with the chaos script installed, and
/// returns the results plus the trace digest.
fn run_chaos(actions: &[ChaosAction], seed: u64, n_tasks: u64) -> (Vec<hetflow_fabric::TaskResult>, u64) {
    let sim = Sim::new();
    let tracer = Tracer::enabled();
    let (res_tx, res_rx): (_, Receiver<hetflow_fabric::TaskResult>) = channel();
    let policies = ReliabilityPolicies {
        default: ReliabilityPolicy {
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_for: Duration::from_secs(30),
                close_after: 1,
                offline_grace: Duration::from_secs(5),
                latency_slo: Duration::ZERO,
            },
            max_reroutes: 1,
            // Hard backstop: whatever the script does, every task id
            // reaches a terminal outcome by submit + 300 s.
            deadline: Duration::from_secs(300),
            ..Default::default()
        },
        per_topic: Default::default(),
    };
    let exec = FnXExecutor::with_reliability(
        &sim,
        FnXParams::default(),
        vec![
            EndpointSpec::reliable(WorkerPoolConfig::bare(SiteId(0), "a", 2), vec!["noop"]),
            EndpointSpec::reliable(WorkerPoolConfig::bare(SiteId(1), "b", 2), vec!["noop"]),
        ],
        res_tx,
        SimRng::from_seed(seed),
        tracer.clone(),
        policies,
    );
    ChaosSpec::new(actions.to_vec()).install(&sim, seed, &exec.chaos_targets());
    let f = Rc::new(exec);
    let sim2 = sim.clone();
    sim.spawn(async move {
        for id in 0..n_tasks {
            f.submit(mk_task(id, 10, 2_000)).await;
            sim2.sleep(hetflow_sim::time::secs(10.0)).await;
        }
    });
    sim.run();
    (res_rx.drain_now(), tracer.digest())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under an arbitrary chaos script, every submitted task id reaches
    /// exactly one terminal outcome — killed sites, flapping links, and
    /// crash storms may fail or reroute tasks, but never lose or
    /// duplicate them.
    #[test]
    fn chaos_never_loses_or_duplicates_tasks(
        raw in prop::collection::vec((0u64..6, 0u64..1_000, 0u64..1_000, 0u64..1_000), 1..6),
        seed in 0u64..1_000,
    ) {
        let actions: Vec<ChaosAction> =
            raw.iter().map(|&(k, a, b, c)| decode_action(k, a, b, c)).collect();
        let n = 8u64;
        let (results, _) = run_chaos(&actions, seed, n);
        prop_assert_eq!(results.len() as u64, n, "one terminal outcome per task");
        let mut ids: Vec<u64> = results.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, n, "no duplicate terminal outcomes");
    }

    /// The chaos engine is replayable: the same (script, seed) pair
    /// produces byte-identical traces.
    #[test]
    fn chaos_same_seed_same_digest(
        raw in prop::collection::vec((0u64..6, 0u64..1_000, 0u64..1_000, 0u64..1_000), 1..6),
        seed in 0u64..1_000,
    ) {
        let actions: Vec<ChaosAction> =
            raw.iter().map(|&(k, a, b, c)| decode_action(k, a, b, c)).collect();
        let (r1, d1) = run_chaos(&actions, seed, 6);
        let (r2, d2) = run_chaos(&actions, seed, 6);
        prop_assert_eq!(d1, d2, "same seed must replay the same trace");
        prop_assert_eq!(r1.len(), r2.len());
    }
}
