//! Application 2: surrogate fine-tuning (§III-B).
//!
//! Produces a machine-learned potential that reproduces reference-level
//! ("DFT") energies and forces for solvated-methane clusters. The loop:
//!
//! * **sample** (CPU): short MD runs *on the current surrogate* propose
//!   new structures; trajectory length ramps 20 → 1000 steps as the
//!   model improves.
//! * **infer** (GPU): ensemble energy predictions over newly sampled
//!   structures re-populate the *uncertainty* pool (highest variance
//!   first); the *audit* pool holds each trajectory's last frame.
//! * **simulate** (CPU): reference-level calculations on structures
//!   drawn alternately from the two pools.
//! * **train** (GPU): refit the ensemble on cheap pre-training labels
//!   plus all reference data after every `retrain_every` new results.
//!
//! A balancing agent shifts CPU workers between simulation and sampling
//! to hold the audit pool near a target size, as in the paper.

use crate::degradation::{DegradationPolicy, DegradationState};
use hetflow_chem::{
    pretraining_set, run_md, solvated_methane, EnergyModel, MdParams, MorsePes, Structure,
};
use hetflow_core::calibration::tasks as cal;
use hetflow_core::Deployment;
use hetflow_fabric::{TaskFn, TaskWork};
use hetflow_chem::force_rmsd;
use hetflow_ml::{
    bag_indices, Ensemble, LabelledStructure, PairPotParams, PairPotential, RadialBasis,
    DEFAULT_BAG_FRACTION,
};
use hetflow_steer::{Payload, ResourceCounter, TaskRecord, Thinker};
use hetflow_sim::{Sim, SimRng, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Campaign parameters (defaults scale the paper's 1720-pretrain /
/// 500-new-structure run down ~8× so a full campaign simulates in
/// seconds of wall time).
#[derive(Clone, Debug)]
pub struct FinetuneParams {
    /// Cheap (approximate-level, energy-only) pre-training structures
    /// (paper: 1720).
    pub pretrain_structures: usize,
    /// Reference calculations to accumulate before stopping
    /// (paper: 500).
    pub target_new: usize,
    /// Retrain after this many new reference results (paper: 25).
    pub retrain_every: usize,
    /// Ensemble size (paper: 8).
    pub ensemble_size: usize,
    /// Audit-pool size the balancer tries to hold.
    pub audit_target: usize,
    /// Re-populate the uncertainty pool after this many newly sampled
    /// structures (paper: 100).
    pub uncertainty_refresh: usize,
    /// MD steps for the first sampling tasks (paper: 20).
    pub md_steps_start: usize,
    /// MD steps for the last sampling tasks (paper: 1000).
    pub md_steps_end: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Overload response: when to shrink the training ensemble.
    /// Disabled by default.
    pub degradation: DegradationPolicy,
}

impl Default for FinetuneParams {
    fn default() -> Self {
        FinetuneParams {
            pretrain_structures: 220,
            target_new: 64,
            retrain_every: 8,
            ensemble_size: 8,
            audit_target: 8,
            uncertainty_refresh: 12,
            md_steps_start: 20,
            md_steps_end: 1000,
            seed: 11,
            degradation: DegradationPolicy::default(),
        }
    }
}

/// Outcome of one fine-tuning campaign.
pub struct FinetuneOutcome {
    /// Reference calculations accumulated.
    pub new_structures: usize,
    /// Force RMSD of the *final* ensemble on the held-out test set
    /// (Fig. 7a's metric).
    pub final_force_rmsd: f64,
    /// Force RMSD of the ensemble *before* any fine-tuning (the dashed
    /// line in Fig. 7a).
    pub initial_force_rmsd: f64,
    /// Retraining rounds completed.
    pub training_rounds: usize,
    /// Sampling tasks completed.
    pub sampling_tasks: usize,
    /// Tasks (of any topic) overload protection shed before they ran.
    pub shed: usize,
    /// Times the campaign entered degraded fidelity.
    pub degradations: u64,
    /// All finished-task records (Fig. 7b overheads, Fig. 1 traces).
    pub records: Vec<TaskRecord>,
    /// Virtual end time.
    pub end: SimTime,
}

/// The reference-level test set of §III-B: MD trajectories at three
/// temperatures, energies and forces at reference level.
pub fn test_set(seed: u64) -> Vec<Structure> {
    let reference = MorsePes::reference();
    let mut rng = SimRng::stream(seed, "finetune-testset");
    let mut set = Vec::new();
    for (t_idx, temp) in [0.05, 0.15, 0.45].into_iter().enumerate() {
        for i in 0..4 {
            let start = solvated_methane(1000 + 10 * t_idx as u64 + i);
            let traj = run_md(
                &reference,
                &start,
                MdParams { dt: 0.005, steps: 32, init_temp: temp, sample_every: 8 },
                &mut rng,
            );
            set.extend(traj.frames.into_iter().skip(1));
        }
    }
    set
}

/// Mean force RMSD of an ensemble (mean prediction) over a test set,
/// against the reference surface.
pub fn ensemble_force_rmsd(ensemble: &Ensemble<PairPotential>, test: &[Structure]) -> f64 {
    let reference = MorsePes::reference();
    let mut acc = 0.0;
    for s in test {
        let (_, truth) = reference.energy_forces(s);
        // Mean force over members.
        let mut mean = vec![[0.0f64; 3]; s.n_atoms()];
        for m in ensemble.members() {
            let (_, f) = m.energy_forces(s);
            for (acc_f, f) in mean.iter_mut().zip(&f) {
                for k in 0..3 {
                    acc_f[k] += f[k] / ensemble.len() as f64;
                }
            }
        }
        acc += force_rmsd(&truth, &mean);
    }
    acc / test.len() as f64
}

struct State {
    /// Cheap pre-training data (energy-only, approximate level).
    pretrain: Rc<Vec<LabelledStructure>>,
    /// Accumulated reference-level data.
    reference_data: RefCell<Vec<LabelledStructure>>,
    /// Audit pool: last frames of recent trajectories.
    audit: RefCell<VecDeque<Structure>>,
    /// Uncertainty pool: structures ranked by ensemble variance.
    uncertain: RefCell<Vec<Structure>>,
    /// Recently sampled structures awaiting uncertainty scoring.
    fresh_samples: RefCell<Vec<Structure>>,
    /// Current ensemble (updated after each training round).
    ensemble: RefCell<Rc<Ensemble<PairPotential>>>,
    /// Results since last retrain.
    since_retrain: Cell<usize>,
    training_active: Cell<bool>,
    inference_active: Cell<bool>,
    rounds: Cell<usize>,
    samples_done: Cell<usize>,
    new_count: Cell<usize>,
    alternate: Cell<bool>,
    /// Shed tasks observed (any topic).
    shed: Cell<usize>,
    /// Fidelity tracker: the trainer consults it per round.
    degradation: Rc<DegradationState>,
    params: FinetuneParams,
}

/// Trains the initial ensemble (pre-training data plus a handful of
/// approximate-level force seeds) — what exists before fine-tuning.
pub fn initial_ensemble(params: &FinetuneParams) -> Ensemble<PairPotential> {
    let approx = MorsePes::approx();
    let mut pre: Vec<LabelledStructure> = pretraining_set(params.pretrain_structures, params.seed)
        .iter()
        .map(|s| LabelledStructure::from_model(s, &approx, false))
        .collect();
    // A few approximate force labels fix the force gauge.
    for (i, s) in pretraining_set(6, params.seed ^ 0xF0).iter().enumerate() {
        let _ = i;
        pre.push(LabelledStructure::from_model(s, &approx, true));
    }
    let pre = Rc::new(pre);
    let rng = SimRng::stream(params.seed, "initial-ensemble");
    Ensemble::fit(params.ensemble_size, &rng, |_i, mut member_rng| {
        fit_member(&pre, &[], &mut member_rng)
    })
}

fn fit_member(
    pretrain: &[LabelledStructure],
    reference: &[LabelledStructure],
    rng: &mut SimRng,
) -> PairPotential {
    let mut data: Vec<LabelledStructure> = Vec::new();
    let bag = bag_indices(pretrain.len(), DEFAULT_BAG_FRACTION, rng);
    data.extend(bag.into_iter().map(|i| pretrain[i].clone()));
    if !reference.is_empty() {
        let bag = bag_indices(reference.len(), DEFAULT_BAG_FRACTION.min(1.0), rng);
        data.extend(bag.into_iter().map(|i| reference[i].clone()));
    }
    PairPotential::fit(
        &data,
        RadialBasis::default_for_clusters(),
        // Up-weight the scarce reference forces so fine-tuning bites.
        PairPotParams { force_weight: 8.0, ..Default::default() },
    )
    .expect("pair potential fit failed")
}

/// Runs the fine-tuning campaign on a deployment.
pub fn run(sim: &Sim, deployment: &Deployment, params: FinetuneParams) -> FinetuneOutcome {
    let approx = MorsePes::approx();
    let rng = SimRng::stream(params.seed, "finetune");
    let queues = deployment.queues.clone();
    let thinker = Thinker::new(sim);

    let pretrain: Rc<Vec<LabelledStructure>> = Rc::new({
        let mut pre: Vec<LabelledStructure> = pretraining_set(params.pretrain_structures, params.seed)
            .iter()
            .map(|s| LabelledStructure::from_model(s, &approx, false))
            .collect();
        for s in pretraining_set(6, params.seed ^ 0xF0).iter() {
            pre.push(LabelledStructure::from_model(s, &approx, true));
        }
        pre
    });

    let initial = Rc::new(initial_ensemble(&params));
    let test = test_set(params.seed);
    let initial_rmsd = ensemble_force_rmsd(&initial, &test);

    // Seed the audit pool with perturbed starting structures.
    let seed_structures: VecDeque<Structure> = (0..params.audit_target)
        .map(|i| solvated_methane(params.seed ^ (200 + i as u64)))
        .collect();

    let degradation =
        DegradationState::new(sim, deployment.tracer.clone(), "finetune", params.degradation);
    if params.degradation.enabled() {
        let d = Rc::clone(&degradation);
        deployment.health.on_breaker_change(move |_endpoint, open| d.on_breaker(open));
    }

    let state = Rc::new(State {
        pretrain,
        reference_data: RefCell::new(Vec::new()),
        audit: RefCell::new(seed_structures),
        uncertain: RefCell::new(Vec::new()),
        fresh_samples: RefCell::new(Vec::new()),
        ensemble: RefCell::new(initial),
        since_retrain: Cell::new(0),
        training_active: Cell::new(false),
        inference_active: Cell::new(false),
        rounds: Cell::new(0),
        samples_done: Cell::new(0),
        new_count: Cell::new(0),
        alternate: Cell::new(false),
        shed: Cell::new(0),
        degradation,
        params: params.clone(),
    });

    // CPU workers split between simulation and sampling.
    let counter = ResourceCounter::new();
    let cpu = deployment.cpu_pool.workers();
    let sim_share = (cpu / 2).max(1);
    counter.register("simulate", sim_share);
    counter.register("sample", cpu.saturating_sub(sim_share).max(1));

    // Breaker → allocator: while the primary CPU endpoint's circuit is
    // open its slots cannot make progress, so flag both CPU pools
    // degraded and let the balancer hold still until it closes again.
    {
        let counter = counter.clone();
        deployment.health.on_breaker_change(move |endpoint, open| {
            if endpoint == 0 {
                counter.set_degraded("simulate", open);
                counter.set_degraded("sample", open);
            }
        });
    }

    let retrain = hetflow_sim::Event::new();
    let score = hetflow_sim::Event::new();

    // --- Agent: sampler ---------------------------------------------------
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let counter = counter.clone();
        let thinker2 = Rc::clone(&thinker);
        let mut rng = rng.substream(1);
        let sim2 = sim.clone();
        thinker.agent("sampler", async move {
            let mut task_no = 0u64;
            loop {
                if thinker2.is_done() {
                    break;
                }
                // Maintain — don't overflow — the audit pool (§III-B:
                // sampling replenishes what simulation consumes).
                if state.audit.borrow().len() >= 2 * state.params.audit_target {
                    sim2.sleep(hetflow_sim::time::secs(30.0)).await;
                    continue;
                }
                let permit = counter.acquire("sample").await;
                permit.forget();
                // Ramp trajectory length with campaign progress.
                let progress = (state.new_count.get() as f64
                    / state.params.target_new as f64)
                    .min(1.0);
                let steps = (state.params.md_steps_start as f64
                    + progress
                        * (state.params.md_steps_end - state.params.md_steps_start) as f64)
                    as usize;
                let start = {
                    let audit = state.audit.borrow();
                    let pick = task_no as usize % audit.len().max(1);
                    audit.get(pick).cloned().unwrap_or_else(|| solvated_methane(task_no))
                };
                let model = state.ensemble.borrow().members()[0].clone();
                let duration = cal::finetune_sample_duration().sample(&mut rng);
                let md_rng = rng.substream(5000 + task_no);
                let compute = sample_task(start, model, steps, duration, md_rng);
                task_no += 1;
                queues
                    .submit("sample", vec![Payload::new((), cal::FINETUNE_SAMPLE_BYTES)], compute)
                    .await;
            }
        });
    }

    // --- Agent: sample receiver -------------------------------------------
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let counter = counter.clone();
        let score = score.clone();
        thinker.agent("sample-receiver", async move {
            loop {
                let Some(done) = queues.get_result("sample").await else { break };
                let resolved = done.resolve().await;
                counter.release("sample", 1);
                if resolved.is_shed() {
                    state.shed.set(state.shed.get() + 1);
                    state.degradation.note_shed();
                    continue;
                }
                if resolved.is_failed() {
                    continue; // lost trajectory: free the slot, sample again
                }
                let frames = resolved.value::<Vec<Structure>>();
                state.samples_done.set(state.samples_done.get() + 1);
                {
                    let mut audit = state.audit.borrow_mut();
                    if let Some(last) = frames.last() {
                        audit.push_back(last.clone());
                        while audit.len() > 4 * state.params.audit_target {
                            audit.pop_front();
                        }
                    }
                }
                state
                    .fresh_samples
                    .borrow_mut()
                    .extend(frames.iter().cloned());
                if state.fresh_samples.borrow().len() >= state.params.uncertainty_refresh
                    && !state.inference_active.get()
                {
                    state.inference_active.set(true);
                    score.set();
                }
            }
        });
    }

    // --- Agent: uncertainty scorer (inference) -----------------------------
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let score2 = score.clone();
        let thinker2 = Rc::clone(&thinker);
        let mut rng = rng.substream(2);
        thinker.agent("uncertainty-scorer", async move {
            loop {
                score2.wait().await;
                score2.clear();
                if thinker2.is_done() {
                    break;
                }
                let batch: Vec<Structure> =
                    state.fresh_samples.borrow_mut().drain(..).collect();
                if batch.is_empty() {
                    state.inference_active.set(false);
                    continue;
                }
                let batch = Rc::new(batch);
                let ensemble = Rc::clone(&state.ensemble.borrow());
                let n = ensemble.len();
                for member in 0..n {
                    let duration = cal::finetune_infer_duration().sample(&mut rng);
                    let compute =
                        infer_task(Rc::clone(&batch), Rc::clone(&ensemble), member, duration);
                    queues
                        .submit(
                            "infer",
                            vec![Payload::new((), cal::FINETUNE_INFER_BYTES)],
                            compute,
                        )
                        .await;
                }
                let mut all: Vec<Rc<Vec<f64>>> = Vec::with_capacity(n);
                for _ in 0..n {
                    let Some(done) = queues.get_result("infer").await else { return };
                    let resolved = done.resolve().await;
                    if resolved.is_shed() {
                        state.shed.set(state.shed.get() + 1);
                        state.degradation.note_shed();
                        continue;
                    }
                    if resolved.is_failed() {
                        continue; // member's scores lost for this round
                    }
                    all.push(resolved.value::<Vec<f64>>());
                }
                if all.is_empty() {
                    state.inference_active.set(false);
                    continue;
                }
                // Variance across the surviving members, per structure;
                // highest first.
                let k = all.len() as f64;
                let m = batch.len();
                let mut vars: Vec<f64> = Vec::with_capacity(m);
                for i in 0..m {
                    let mean: f64 = all.iter().map(|v| v[i]).sum::<f64>() / k;
                    let var: f64 =
                        all.iter().map(|v| (v[i] - mean).powi(2)).sum::<f64>() / k;
                    vars.push(var);
                }
                let order = hetflow_ml::rank_by_uncertainty(&vars, m);
                let ranked: Vec<Structure> =
                    order.into_iter().map(|i| batch[i].clone()).collect();
                *state.uncertain.borrow_mut() = ranked;
                state.inference_active.set(false);
            }
        });
    }

    // --- Agent: simulation dispatcher --------------------------------------
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let counter = counter.clone();
        let thinker2 = Rc::clone(&thinker);
        let mut rng = rng.substream(3);
        thinker.agent("simulation-dispatcher", async move {
            loop {
                if state.new_count.get() >= state.params.target_new {
                    thinker2.finish();
                    break;
                }
                let permit = counter.acquire("simulate").await;
                permit.forget();
                // Alternate between the audit and uncertainty pools.
                let use_audit = state.alternate.get();
                state.alternate.set(!use_audit);
                let structure = if use_audit {
                    state.audit.borrow_mut().pop_front()
                } else {
                    let mut unc = state.uncertain.borrow_mut();
                    if unc.is_empty() {
                        None
                    } else {
                        Some(unc.remove(0))
                    }
                };
                let structure = structure
                    .or_else(|| state.audit.borrow_mut().pop_front())
                    .unwrap_or_else(|| solvated_methane(rng.below(1000) as u64));
                let duration = cal::finetune_simulate_duration().sample(&mut rng);
                let compute = simulate_task(structure, duration);
                queues
                    .submit("simulate", vec![Payload::new((), 5_000)], compute)
                    .await;
            }
        });
    }

    // --- Agent: simulation receiver -----------------------------------------
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let counter = counter.clone();
        let retrain = retrain.clone();
        thinker.agent("simulation-receiver", async move {
            loop {
                let Some(done) = queues.get_result("simulate").await else { break };
                let resolved = done.resolve().await;
                counter.release("simulate", 1);
                if resolved.is_shed() {
                    state.shed.set(state.shed.get() + 1);
                    state.degradation.note_shed();
                    continue;
                }
                if resolved.is_failed() {
                    continue; // no label produced: the structure is lost
                }
                state.degradation.note_ok();
                let labelled = resolved.value::<LabelledStructure>();
                state.reference_data.borrow_mut().push((*labelled).clone());
                state.new_count.set(state.new_count.get() + 1);
                state.since_retrain.set(state.since_retrain.get() + 1);
                if state.since_retrain.get() >= state.params.retrain_every
                    && !state.training_active.get()
                {
                    state.since_retrain.set(0);
                    state.training_active.set(true);
                    retrain.set();
                }
            }
        });
    }

    // --- Agent: trainer -------------------------------------------------------
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let retrain2 = retrain.clone();
        let thinker2 = Rc::clone(&thinker);
        let mut rng = rng.substream(4);
        thinker.agent("trainer", async move {
            loop {
                retrain2.wait().await;
                retrain2.clear();
                if thinker2.is_done() {
                    break;
                }
                let reference = Rc::new(state.reference_data.borrow().clone());
                // Degraded mode: a half-size ensemble refit keeps the
                // campaign learning at a fraction of the GPU bill.
                let n = state.degradation.ensemble_size(state.params.ensemble_size);
                for member in 0..n {
                    let duration = cal::finetune_train_duration().sample(&mut rng);
                    let member_rng = rng.substream(9000 + member as u64);
                    let compute = train_task(
                        Rc::clone(&state.pretrain),
                        Rc::clone(&reference),
                        member_rng,
                        duration,
                    );
                    queues
                        .submit("train", vec![Payload::new((), cal::FINETUNE_TRAIN_BYTES)], compute)
                        .await;
                }
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    let Some(done) = queues.get_result("train").await else { return };
                    let resolved = done.resolve().await;
                    if resolved.is_shed() {
                        state.shed.set(state.shed.get() + 1);
                        state.degradation.note_shed();
                        continue;
                    }
                    if resolved.is_failed() {
                        continue; // train member lost; the round shrinks
                    }
                    members.push((*resolved.value::<PairPotential>()).clone());
                }
                if !members.is_empty() {
                    // A fully failed round keeps the previous ensemble.
                    *state.ensemble.borrow_mut() = Rc::new(Ensemble::from_members(members));
                    state.rounds.set(state.rounds.get() + 1);
                }
                state.training_active.set(false);
            }
        });
    }

    // --- Agent: worker balancer (audit pool homeostasis) --------------------
    {
        let state = Rc::clone(&state);
        let counter = counter.clone();
        let thinker2 = Rc::clone(&thinker);
        let sim2 = sim.clone();
        thinker.agent("balancer", async move {
            loop {
                sim2.sleep(hetflow_sim::time::secs(120.0)).await;
                if thinker2.is_done() {
                    break;
                }
                let audit_len = state.audit.borrow().len();
                let target = state.params.audit_target;
                // Hold still while the backing endpoint is circuit-
                // broken: shuffling slots into a degraded pool just
                // queues work behind a dead endpoint.
                if counter.is_degraded("simulate") || counter.is_degraded("sample") {
                    continue;
                }
                if audit_len < target / 2 && counter.available("simulate") > 0 {
                    counter.reallocate("simulate", "sample", 1).await;
                } else if audit_len > 2 * target && counter.available("sample") > 0 {
                    counter.reallocate("sample", "simulate", 1).await;
                }
            }
        });
    }

    sim.run();

    let final_rmsd = ensemble_force_rmsd(&state.ensemble.borrow(), &test);
    FinetuneOutcome {
        new_structures: state.new_count.get(),
        final_force_rmsd: final_rmsd,
        initial_force_rmsd: initial_rmsd,
        training_rounds: state.rounds.get(),
        sampling_tasks: state.samples_done.get(),
        shed: state.shed.get(),
        degradations: state.degradation.degradations(),
        records: queues.records(),
        end: sim.now(),
    }
}

fn sample_task(
    start: Structure,
    model: PairPotential,
    steps: usize,
    duration: f64,
    md_rng: SimRng,
) -> TaskFn {
    let md_rng = RefCell::new(md_rng);
    Rc::new(move |_ctx| {
        let mut md_rng = md_rng.borrow_mut();
        let traj = run_md(
            &model,
            &start,
            MdParams {
                dt: 0.005,
                steps,
                init_temp: 0.05,
                sample_every: (steps / 4).max(1),
            },
            &mut md_rng,
        );
        let frames: Vec<Structure> = traj.frames.into_iter().skip(1).collect();
        TaskWork::new(frames, cal::FINETUNE_SAMPLE_BYTES, hetflow_sim::time::secs(duration))
    })
}

fn simulate_task(structure: Structure, duration: f64) -> TaskFn {
    Rc::new(move |_ctx| {
        let reference = MorsePes::reference();
        let labelled = LabelledStructure::from_model(&structure, &reference, true);
        TaskWork::new(labelled, cal::FINETUNE_SIM_BYTES, hetflow_sim::time::secs(duration))
    })
}

fn train_task(
    pretrain: Rc<Vec<LabelledStructure>>,
    reference: Rc<Vec<LabelledStructure>>,
    member_rng: SimRng,
    duration: f64,
) -> TaskFn {
    let member_rng = RefCell::new(member_rng);
    Rc::new(move |_ctx| {
        let model = fit_member(&pretrain, &reference, &mut member_rng.borrow_mut());
        TaskWork::new(model, cal::FINETUNE_TRAIN_BYTES, hetflow_sim::time::secs(duration))
    })
}

fn infer_task(
    batch: Rc<Vec<Structure>>,
    ensemble: Rc<Ensemble<PairPotential>>,
    member: usize,
    duration: f64,
) -> TaskFn {
    Rc::new(move |_ctx| {
        let model = &ensemble.members()[member];
        let energies: Vec<f64> = batch.iter().map(|s| model.energy(s)).collect();
        TaskWork::new(energies, cal::FINETUNE_INFER_BYTES, hetflow_sim::time::secs(duration))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
    use hetflow_sim::Tracer;

    fn quick_params() -> FinetuneParams {
        FinetuneParams {
            pretrain_structures: 60,
            target_new: 16,
            retrain_every: 4,
            ensemble_size: 4,
            audit_target: 4,
            uncertainty_refresh: 6,
            md_steps_end: 200,
            ..Default::default()
        }
    }

    fn quick_spec() -> DeploymentSpec {
        DeploymentSpec { cpu_workers: 4, gpu_workers: 4, ..Default::default() }
    }

    #[test]
    fn campaign_completes_all_task_types() {
        let sim = Sim::new();
        let d = deploy(&sim, WorkflowConfig::FnXGlobus, &quick_spec(), Tracer::disabled());
        let o = run(&sim, &d, quick_params());
        assert!(o.new_structures >= 16);
        assert!(o.training_rounds >= 1, "no training happened");
        assert!(o.sampling_tasks >= 1, "no sampling happened");
        let topics: std::collections::HashSet<&str> =
            o.records.iter().map(|r| r.topic.as_str()).collect();
        for t in ["simulate", "sample", "train", "infer"] {
            assert!(topics.contains(t), "missing topic {t}");
        }
    }

    #[test]
    fn finetuning_improves_force_rmsd() {
        let sim = Sim::new();
        let d = deploy(&sim, WorkflowConfig::ParslRedis, &quick_spec(), Tracer::disabled());
        let o = run(&sim, &d, quick_params());
        assert!(
            o.final_force_rmsd < o.initial_force_rmsd,
            "fine-tuning must reduce force error: {} -> {}",
            o.initial_force_rmsd,
            o.final_force_rmsd
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let go = || {
            let sim = Sim::new();
            let d = deploy(&sim, WorkflowConfig::Parsl, &quick_spec(), Tracer::disabled());
            let o = run(&sim, &d, quick_params());
            (o.new_structures, o.training_rounds, o.end, o.final_force_rmsd.to_bits())
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn test_set_shape() {
        let set = test_set(3);
        // 3 temperatures × 4 starts × 4 sampled frames.
        assert_eq!(set.len(), 48);
        assert!(set.iter().all(|s| s.n_atoms() == 16));
    }
}
