//! Graceful fidelity degradation under sustained overload.
//!
//! When overload protection starts shedding an application's tasks —
//! or the reliability layer opens a breaker on the endpoint the tasks
//! run on — finishing *some* science per unit time beats finishing
//! none at full fidelity. A [`DegradationPolicy`] turns that judgement
//! into a small deterministic state machine ([`DegradationState`]):
//!
//! * after `trigger_after` consecutive shed results (or any breaker
//!   opening), the campaign enters **degraded mode**: molecular design
//!   downgrades its oracle from the DFT-like tight-binding call to a
//!   TTM-like classical estimate, and fine-tuning halves its training
//!   ensemble;
//! * after `restore_after` consecutive successful results with every
//!   breaker closed again, full fidelity is **restored**.
//!
//! Transitions are observable: each degradation emits a
//! `fidelity_degraded` trace event and each recovery a
//! `fidelity_restored` event, both folding into the run's digest, so a
//! campaign that degraded is bit-distinguishable from one that never
//! did. The default policy is disabled (`trigger_after == 0`): it
//! never emits, never awaits, and never draws randomness, keeping
//! all-zero deployments bit-identical to pre-overload seeds.

use hetflow_sim::{trace_kinds as kinds, Sim, Symbol, Tracer};
use std::cell::Cell;
use std::rc::Rc;

/// When to trade fidelity for goodput. The all-zero default disables
/// degradation entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct DegradationPolicy {
    /// Enter degraded mode after this many *consecutive* shed results
    /// on the steered topic. `0` disables the policy.
    pub trigger_after: usize,
    /// Leave degraded mode after this many consecutive successes with
    /// no breaker open. `0` means "same as `trigger_after`".
    pub restore_after: usize,
}

impl DegradationPolicy {
    /// True when the policy can ever degrade.
    pub fn enabled(&self) -> bool {
        self.trigger_after > 0
    }

    /// Successes required before fidelity is restored.
    pub fn restore_threshold(&self) -> usize {
        if self.restore_after > 0 {
            self.restore_after
        } else {
            self.trigger_after
        }
    }
}

/// Per-campaign degradation tracker. Applications feed it result
/// outcomes ([`note_shed`](DegradationState::note_shed) /
/// [`note_ok`](DegradationState::note_ok)) and breaker transitions
/// ([`on_breaker`](DegradationState::on_breaker)); dispatchers consult
/// [`is_degraded`](DegradationState::is_degraded) and
/// [`ensemble_size`](DegradationState::ensemble_size) when choosing
/// task fidelity.
pub struct DegradationState {
    sim: Sim,
    tracer: Tracer,
    actor: Symbol,
    policy: DegradationPolicy,
    consecutive_shed: Cell<usize>,
    consecutive_ok: Cell<usize>,
    /// Breakers currently open anywhere in the deployment — overload
    /// pressure the shed counter cannot see (the fabric reroutes or
    /// suppresses instead of shedding).
    open_breakers: Cell<usize>,
    degraded: Cell<bool>,
    /// Monotone count of degradations so far; doubles as the trace
    /// entity so paired degrade/restore events correlate in the digest.
    generation: Cell<u64>,
}

impl DegradationState {
    /// A tracker emitting through `tracer` as `actor`.
    pub fn new(sim: &Sim, tracer: Tracer, actor: &str, policy: DegradationPolicy) -> Rc<Self> {
        Rc::new(DegradationState {
            sim: sim.clone(),
            tracer,
            actor: Symbol::intern(actor),
            policy,
            consecutive_shed: Cell::new(0),
            consecutive_ok: Cell::new(0),
            open_breakers: Cell::new(0),
            degraded: Cell::new(false),
            generation: Cell::new(0),
        })
    }

    /// The policy this tracker runs.
    pub fn policy(&self) -> DegradationPolicy {
        self.policy
    }

    /// True while the campaign should run at reduced fidelity.
    pub fn is_degraded(&self) -> bool {
        self.degraded.get()
    }

    /// Degradations entered so far.
    pub fn degradations(&self) -> u64 {
        self.generation.get()
    }

    /// Ensemble size to use this round: halved (never below one) while
    /// degraded, nominal otherwise.
    pub fn ensemble_size(&self, nominal: usize) -> usize {
        if self.degraded.get() {
            (nominal / 2).max(1)
        } else {
            nominal
        }
    }

    /// Record a shed result on the steered topic.
    pub fn note_shed(&self) {
        self.consecutive_ok.set(0);
        if !self.policy.enabled() {
            return;
        }
        let run = self.consecutive_shed.get() + 1;
        self.consecutive_shed.set(run);
        if !self.degraded.get() && run >= self.policy.trigger_after {
            self.degrade(run as f64);
        }
    }

    /// Record a successful result on the steered topic.
    pub fn note_ok(&self) {
        self.consecutive_shed.set(0);
        if !self.policy.enabled() || !self.degraded.get() {
            return;
        }
        let run = self.consecutive_ok.get() + 1;
        self.consecutive_ok.set(run);
        if run >= self.policy.restore_threshold() && self.open_breakers.get() == 0 {
            self.restore();
        }
    }

    /// Record a breaker transition (wire via
    /// `ReliabilityLayer::on_breaker_change`). An opening breaker is
    /// immediate overload pressure: the campaign degrades without
    /// waiting for a shed run. Recovery still requires the usual
    /// success run *and* every breaker closed.
    pub fn on_breaker(&self, open: bool) {
        let n = self.open_breakers.get();
        if open {
            self.open_breakers.set(n + 1);
            if self.policy.enabled() && !self.degraded.get() {
                self.degrade(0.0);
            }
        } else {
            self.open_breakers.set(n.saturating_sub(1));
        }
    }

    fn degrade(&self, pressure: f64) {
        self.degraded.set(true);
        self.consecutive_ok.set(0);
        let generation = self.generation.get() + 1;
        self.generation.set(generation);
        self.tracer.emit(
            self.sim.now(),
            self.actor,
            kinds::FIDELITY_DEGRADED,
            generation,
            pressure,
        );
    }

    fn restore(&self) {
        self.degraded.set(false);
        self.consecutive_shed.set(0);
        self.consecutive_ok.set(0);
        self.tracer.emit(
            self.sim.now(),
            self.actor,
            kinds::FIDELITY_RESTORED,
            self.generation.get(),
            0.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(policy: DegradationPolicy) -> (Sim, Rc<DegradationState>, Tracer) {
        let sim = Sim::new();
        let tracer = Tracer::enabled();
        let state = DegradationState::new(&sim, tracer.clone(), "test", policy);
        (sim, state, tracer)
    }

    #[test]
    fn disabled_policy_never_degrades() {
        let (_sim, state, tracer) = tracker(DegradationPolicy::default());
        for _ in 0..100 {
            state.note_shed();
        }
        state.on_breaker(true);
        assert!(!state.is_degraded());
        assert_eq!(state.degradations(), 0);
        assert_eq!(tracer.events().len(), 0, "disabled policy must not emit");
    }

    #[test]
    fn shed_run_triggers_and_success_run_restores() {
        let (_sim, state, tracer) =
            tracker(DegradationPolicy { trigger_after: 3, restore_after: 2 });
        state.note_shed();
        state.note_shed();
        assert!(!state.is_degraded(), "two sheds are below the trigger");
        state.note_shed();
        assert!(state.is_degraded(), "third consecutive shed degrades");
        assert_eq!(state.degradations(), 1);
        state.note_ok();
        assert!(state.is_degraded(), "one success is below the restore run");
        state.note_ok();
        assert!(!state.is_degraded(), "restore run completes");
        assert_eq!(tracer.events().len(), 2, "one degrade + one restore");
    }

    #[test]
    fn interleaved_ok_resets_the_shed_run() {
        let (_sim, state, _tracer) =
            tracker(DegradationPolicy { trigger_after: 2, restore_after: 1 });
        state.note_shed();
        state.note_ok();
        state.note_shed();
        assert!(!state.is_degraded(), "the run must be consecutive");
    }

    #[test]
    fn breaker_opening_degrades_and_blocks_restore() {
        let (_sim, state, _tracer) =
            tracker(DegradationPolicy { trigger_after: 5, restore_after: 1 });
        state.on_breaker(true);
        assert!(state.is_degraded(), "an open breaker is immediate pressure");
        state.note_ok();
        assert!(state.is_degraded(), "no restore while a breaker is open");
        state.on_breaker(false);
        state.note_ok();
        assert!(!state.is_degraded(), "restores once breakers close");
    }

    #[test]
    fn restore_threshold_defaults_to_trigger() {
        let p = DegradationPolicy { trigger_after: 4, restore_after: 0 };
        assert_eq!(p.restore_threshold(), 4);
        assert!(p.enabled());
    }

    #[test]
    fn ensemble_halves_only_while_degraded() {
        let (_sim, state, _tracer) =
            tracker(DegradationPolicy { trigger_after: 1, restore_after: 1 });
        assert_eq!(state.ensemble_size(8), 8);
        state.note_shed();
        assert_eq!(state.ensemble_size(8), 4);
        assert_eq!(state.ensemble_size(1), 1, "never shrinks to zero");
        state.note_ok();
        assert_eq!(state.ensemble_size(8), 8);
    }
}
