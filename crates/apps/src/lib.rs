//! # hetflow-apps — the paper's two applications
//!
//! End-to-end AI-guided simulation campaigns running on any
//! [`hetflow_core::Deployment`]:
//!
//! * [`moldesign`] — active-learning molecular design (§III-A):
//!   simulate → retrain ensemble → score library → reorder queue.
//! * [`finetune`] — surrogate fine-tuning (§III-B): surrogate-MD
//!   sampling, audit/uncertainty pools, reference-level calculations,
//!   ensemble refits, and worker rebalancing.
//!
//! The campaigns perform real learning inside task closures while
//! communication and task durations advance virtual time, so the
//! science outcomes (Figs. 6a, 7a) reflect how fast each workflow
//! configuration actually moves data.

pub mod degradation;
pub mod finetune;
pub mod matrix;
pub mod moldesign;

pub use degradation::{DegradationPolicy, DegradationState};
pub use finetune::{
    ensemble_force_rmsd, initial_ensemble, test_set, FinetuneOutcome, FinetuneParams,
};
pub use matrix::{finetune_matrix, moldesign_matrix, ranges_overlap, FinetuneCell, MolDesignCell};
pub use moldesign::{MolDesignOutcome, MolDesignParams, SteeringMode};
