//! Experiment matrices: run a campaign across configurations × seeds
//! and aggregate the outcomes.
//!
//! The paper's headline tables (Figs. 6b, 7a) are exactly this shape —
//! three workflow configurations, three seeds each, mean/min/max of the
//! science metric plus latency medians. This module is the reusable
//! driver behind them.

use crate::finetune::{self, FinetuneParams};
use crate::moldesign::{self, MolDesignParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_steer::Breakdown;
use hetflow_sim::{Samples, Sim, Tracer};

/// One cell of a molecular-design matrix: a configuration's aggregated
/// outcomes over all seeds.
#[derive(Clone, Debug)]
pub struct MolDesignCell {
    /// The configuration.
    pub config: WorkflowConfig,
    /// Molecules found per seed.
    pub found: Samples,
    /// Simulations completed per seed.
    pub simulations: Samples,
    /// ML-pipeline makespans pooled across seeds (seconds).
    pub ml_makespans: Samples,
    /// CPU idle gaps pooled across seeds (seconds).
    pub cpu_idle: Samples,
}

/// Runs the molecular-design campaign for every configuration × seed.
///
/// `spec_for` lets callers vary worker counts or calibration per seed;
/// most callers pass `|seed| DeploymentSpec { seed, ..Default::default() }`.
pub fn moldesign_matrix(
    configs: &[WorkflowConfig],
    seeds: &[u64],
    params: &MolDesignParams,
    spec_for: impl Fn(u64) -> DeploymentSpec,
) -> Vec<MolDesignCell> {
    configs
        .iter()
        .map(|&config| {
            let mut cell = MolDesignCell {
                config,
                found: Samples::new(),
                simulations: Samples::new(),
                ml_makespans: Samples::new(),
                cpu_idle: Samples::new(),
            };
            for &seed in seeds {
                let sim = Sim::new();
                let deployment = deploy(&sim, config, &spec_for(seed), Tracer::disabled());
                let outcome = moldesign::run(
                    &sim,
                    &deployment,
                    MolDesignParams { seed, ..params.clone() },
                );
                cell.found.record(outcome.found as f64);
                cell.simulations.record(outcome.simulations as f64);
                cell.ml_makespans.extend_from(&outcome.ml_makespans);
                cell.cpu_idle.extend_from(&outcome.cpu_idle);
            }
            cell
        })
        .collect()
}

/// One cell of a fine-tuning matrix.
#[derive(Clone, Debug)]
pub struct FinetuneCell {
    /// The configuration.
    pub config: WorkflowConfig,
    /// Final force RMSD per seed.
    pub rmsd: Samples,
    /// Pre-fine-tuning RMSD of the *last* seed's initial ensemble
    /// (the initial ensemble is seed-dependent; use it as an
    /// order-of-magnitude baseline, not a shared constant).
    pub initial_rmsd: f64,
    /// Per-task overheads pooled across seeds (seconds).
    pub overhead: Samples,
}

/// Runs the fine-tuning campaign for every configuration × seed.
pub fn finetune_matrix(
    configs: &[WorkflowConfig],
    seeds: &[u64],
    params: &FinetuneParams,
    spec_for: impl Fn(u64) -> DeploymentSpec,
) -> Vec<FinetuneCell> {
    configs
        .iter()
        .map(|&config| {
            let mut cell = FinetuneCell {
                config,
                rmsd: Samples::new(),
                initial_rmsd: 0.0,
                overhead: Samples::new(),
            };
            for &seed in seeds {
                let sim = Sim::new();
                let deployment = deploy(&sim, config, &spec_for(seed), Tracer::disabled());
                let outcome = finetune::run(
                    &sim,
                    &deployment,
                    FinetuneParams { seed, ..params.clone() },
                );
                cell.rmsd.record(outcome.final_force_rmsd);
                cell.initial_rmsd = outcome.initial_force_rmsd;
                cell.overhead
                    .extend_from(&Breakdown::of(&outcome.records, None).overhead);
            }
            cell
        })
        .collect()
}

/// True when two sample sets' ranges overlap — the paper's criterion
/// for "statistically indistinguishable" campaign outcomes.
pub fn ranges_overlap(a: &Samples, b: &Samples) -> bool {
    a.min() <= b.max() && b.min() <= a.max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny_moldesign() -> MolDesignParams {
        MolDesignParams {
            library_size: 1_500,
            budget: Duration::from_secs(1800),
            ensemble_size: 2,
            retrain_after: 8,
            ..Default::default()
        }
    }

    #[test]
    fn moldesign_matrix_covers_all_cells() {
        let cells = moldesign_matrix(
            &WorkflowConfig::all(),
            &[7, 8],
            &tiny_moldesign(),
            |seed| DeploymentSpec { cpu_workers: 4, gpu_workers: 4, seed, ..Default::default() },
        );
        assert_eq!(cells.len(), 3);
        for cell in &cells {
            assert_eq!(cell.found.len(), 2, "{}: one sample per seed", cell.config.label());
            assert!(cell.simulations.mean() > 10.0);
        }
    }

    #[test]
    fn finetune_matrix_reports_improvement() {
        let params = FinetuneParams {
            pretrain_structures: 50,
            target_new: 8,
            retrain_every: 4,
            ensemble_size: 2,
            md_steps_end: 100,
            ..Default::default()
        };
        let cells = finetune_matrix(
            &[WorkflowConfig::ParslRedis, WorkflowConfig::FnXGlobus],
            &[11],
            &params,
            |seed| DeploymentSpec { cpu_workers: 4, gpu_workers: 4, seed, ..Default::default() },
        );
        assert_eq!(cells.len(), 2);
        for cell in &cells {
            assert!(cell.rmsd.mean() < cell.initial_rmsd, "{}", cell.config.label());
            assert!(!cell.overhead.is_empty());
        }
        // The parity criterion the paper applies.
        assert!(ranges_overlap(&cells[0].rmsd, &cells[1].rmsd) || {
            // Single seed: ranges are points; allow closeness instead.
            (cells[0].rmsd.mean() - cells[1].rmsd.mean()).abs() < 0.05
        });
    }

    #[test]
    fn ranges_overlap_logic() {
        let mut a = Samples::new();
        a.record(1.0);
        a.record(3.0);
        let mut b = Samples::new();
        b.record(2.5);
        b.record(5.0);
        let mut c = Samples::new();
        c.record(4.0);
        c.record(6.0);
        assert!(ranges_overlap(&a, &b));
        assert!(ranges_overlap(&b, &c));
        assert!(!ranges_overlap(&a, &c));
    }
}
