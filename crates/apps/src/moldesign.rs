//! Application 1: active-learning molecular design (§III-A).
//!
//! Finds high-ionization-potential molecules in a candidate library by
//! looping: simulate the most promising candidates (CPU), retrain a
//! surrogate ensemble on all results (GPU), score the full library with
//! every ensemble member (GPU), and reorder the simulation queue by UCB.
//!
//! The science is real: simulation tasks evaluate the library's hidden
//! IP function, training tasks fit actual RFF-ridge models on the
//! accumulated data inside the task closure, and inference outputs are
//! genuine model scores — so the "molecules found vs compute" curves of
//! Fig. 6a *emerge* from how quickly each workflow configuration moves
//! data and instructions.

use crate::degradation::{DegradationPolicy, DegradationState};
use hetflow_chem::MoleculeLibrary;
use hetflow_core::calibration::tasks as cal;
use hetflow_core::{Deployment, UtilizationReport};
use hetflow_fabric::{TaskFn, TaskWork};
use hetflow_ml::{bag_indices, top_k, RffRidge, SurrogateParams, DEFAULT_BAG_FRACTION};
use hetflow_steer::{Payload, TaskRecord, Thinker};
use hetflow_sim::{Samples, Sim, SimRng, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::time::Duration;

/// How simulations are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SteeringMode {
    /// The paper's policy: retrain the ensemble, score the library,
    /// reorder the queue by UCB.
    ActiveLearning,
    /// Ablation baseline: never retrain; the queue stays in its random
    /// initial order.
    Random,
}

/// Campaign parameters (defaults are the paper setup scaled ~50×
/// down in library size; durations and data sizes are unscaled).
#[derive(Clone, Debug)]
pub struct MolDesignParams {
    /// Candidate library size (paper: 1 115 321; default scaled).
    pub library_size: usize,
    /// Simulation node-time budget (paper: 6 node-hours).
    pub budget: Duration,
    /// Surrogate ensemble size (paper: 8).
    pub ensemble_size: usize,
    /// New simulation results that trigger a retraining round once the
    /// previous round has finished.
    pub retrain_after: usize,
    /// Success threshold (paper: IP > 14).
    pub ip_threshold: f64,
    /// UCB exploration weight (paper: mean + std, i.e. κ = 1).
    pub kappa: f64,
    /// Extra simulations queued beyond the worker count. The paper's
    /// measured deployment used none — workers idle for the full
    /// notify→decide→dispatch loop between tasks (the Fig. 6b idle
    /// times) — and §V-E1 *recommends* ≥ 1 as an improvement, which the
    /// backlog-sweep ablation quantifies.
    pub backlog: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Steering policy (ablation hook).
    pub steering: SteeringMode,
    /// Overload response: when to swap the DFT-like oracle for the
    /// TTM-like fast estimate. Disabled by default.
    pub degradation: DegradationPolicy,
}

impl Default for MolDesignParams {
    fn default() -> Self {
        MolDesignParams {
            library_size: 20_000,
            budget: cal::moldesign_budget(),
            ensemble_size: 8,
            retrain_after: 16,
            ip_threshold: 14.0,
            kappa: 1.0,
            backlog: 0,
            seed: 7,
            steering: SteeringMode::ActiveLearning,
            degradation: DegradationPolicy::default(),
        }
    }
}

/// Outcome of one molecular-design campaign.
pub struct MolDesignOutcome {
    /// Molecules found with IP above the threshold.
    pub found: usize,
    /// Simulations completed.
    pub simulations: usize,
    /// Tasks (of any topic) that came back failed — nonzero only under
    /// failure injection or outages.
    pub failed: usize,
    /// Tasks (of any topic) overload protection shed before they ran.
    pub shed: usize,
    /// Times the campaign entered degraded fidelity.
    pub degradations: u64,
    /// `(cumulative simulation node-seconds, molecules found)` curve —
    /// the Fig. 6a series.
    pub found_curve: Vec<(f64, usize)>,
    /// ML-pipeline makespans: retrain requested → queue reordered
    /// (Fig. 6b "ML makespan"), seconds.
    pub ml_makespans: Samples,
    /// CPU worker idle gaps between simulation tasks, seconds
    /// (Fig. 6b right panel).
    pub cpu_idle: Samples,
    /// All finished-task records (for Figs. 1 and 5).
    pub records: Vec<TaskRecord>,
    /// Wall-clock (virtual) end of the campaign.
    pub end: SimTime,
}

impl MolDesignOutcome {
    /// Molecules found once at least `node_seconds` of simulation time
    /// was expended.
    pub fn found_at(&self, node_seconds: f64) -> usize {
        self.found_curve
            .iter()
            .take_while(|&&(t, _)| t <= node_seconds)
            .last()
            .map(|&(_, f)| f)
            .unwrap_or(0)
    }

    /// Utilization report (Fig. 1 top panel).
    pub fn utilization(&self) -> UtilizationReport {
        UtilizationReport::from_records(&self.records)
    }
}

struct State {
    lib: Rc<MoleculeLibrary>,
    /// Ranked candidate queue (best last, for O(1) pop).
    queue: RefCell<Vec<usize>>,
    /// Simulated or in-flight molecule ids.
    dispatched: RefCell<HashSet<usize>>,
    /// Completed (id, ip) pairs — the training database.
    database: RefCell<Vec<(usize, f64)>>,
    /// Results since the last retrain trigger.
    since_retrain: Cell<usize>,
    /// A retraining round is in flight.
    training_active: Cell<bool>,
    /// Cumulative simulation node-seconds.
    node_time: Cell<f64>,
    /// Molecules found above threshold.
    found: Cell<usize>,
    /// Failed tasks observed (any topic).
    failed: Cell<usize>,
    /// Shed tasks observed (any topic).
    shed: Cell<usize>,
    found_curve: RefCell<Vec<(f64, usize)>>,
    ml_makespans: RefCell<Samples>,
    /// Fidelity tracker: the dispatcher consults it per simulation.
    degradation: Rc<DegradationState>,
    params: MolDesignParams,
}

/// Runs the campaign on an already-built deployment; returns when the
/// simulation budget is exhausted and in-flight work has drained.
pub fn run(sim: &Sim, deployment: &Deployment, params: MolDesignParams) -> MolDesignOutcome {
    let lib = Rc::new(MoleculeLibrary::generate(params.library_size, params.seed));
    let rng = SimRng::stream(params.seed, "moldesign");
    let queues = deployment.queues.clone();
    let thinker = Thinker::new(sim);

    // Initial queue: random order (no model yet).
    let mut initial: Vec<usize> = (0..params.library_size).collect();
    let mut shuffle_rng = rng.substream(0);
    shuffle_rng.shuffle(&mut initial);

    let degradation =
        DegradationState::new(sim, deployment.tracer.clone(), "moldesign", params.degradation);
    if params.degradation.enabled() {
        // Breakers opening on any endpoint are overload pressure too.
        let d = Rc::clone(&degradation);
        deployment.health.on_breaker_change(move |_endpoint, open| d.on_breaker(open));
    }

    let state = Rc::new(State {
        lib: Rc::clone(&lib),
        queue: RefCell::new(initial),
        dispatched: RefCell::new(HashSet::new()),
        database: RefCell::new(Vec::new()),
        since_retrain: Cell::new(0),
        training_active: Cell::new(false),
        node_time: Cell::new(0.0),
        found: Cell::new(0),
        failed: Cell::new(0),
        shed: Cell::new(0),
        found_curve: RefCell::new(vec![(0.0, 0)]),
        ml_makespans: RefCell::new(Samples::new()),
        degradation,
        params: params.clone(),
    });

    let slots = hetflow_sim::Semaphore::new(deployment.cpu_pool.workers() + params.backlog);
    let retrain = hetflow_sim::Event::new();

    // --- Agent: simulation dispatcher -----------------------------------
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let slots = slots.clone();
        let thinker2 = Rc::clone(&thinker);
        let mut rng = rng.substream(1);
        thinker.agent("simulation-dispatcher", async move {
            loop {
                if state.node_time.get() >= state.params.budget.as_secs_f64() {
                    thinker2.finish();
                    break;
                }
                let permit = slots.acquire().await;
                permit.forget(); // released by the receiver
                let id = {
                    let mut queue = state.queue.borrow_mut();
                    let dispatched = state.dispatched.borrow();
                    loop {
                        let Some(id) = queue.pop() else { break None };
                        if !dispatched.contains(&id) {
                            break Some(id);
                        }
                    }
                };
                let Some(id) = id else {
                    // Candidate queue exhausted before the budget: end
                    // the campaign explicitly rather than going quiet.
                    thinker2.finish();
                    break;
                };
                state.dispatched.borrow_mut().insert(id);
                // Fidelity swap: while degraded, the oracle is the
                // TTM-like fast estimate instead of the DFT-like call.
                let duration = if state.degradation.is_degraded() {
                    cal::moldesign_simulate_fast_duration().sample(&mut rng)
                } else {
                    cal::moldesign_simulate_duration().sample(&mut rng)
                };
                let compute = simulate_task(Rc::clone(&state.lib), id, duration);
                queues
                    .submit(
                        "simulate",
                        vec![Payload::new(id, cal::MOLDESIGN_SIM_BYTES / 100)],
                        compute,
                    )
                    .await;
            }
        });
    }

    // --- Agent: simulation receiver --------------------------------------
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let slots = slots.clone();
        let retrain = retrain.clone();
        thinker.agent("simulation-receiver", async move {
            loop {
                let Some(done) = queues.get_result("simulate").await else { break };
                let resolved = done.resolve().await;
                slots.add_permits(1);
                if resolved.is_shed() {
                    // Overload protection dropped the task before it
                    // ran: feed the degradation tracker and move on.
                    state.shed.set(state.shed.get() + 1);
                    state.degradation.note_shed();
                    continue;
                }
                if resolved.is_failed() {
                    // The candidate is lost for this campaign: free the
                    // worker slot and keep steering on what did finish.
                    state.failed.set(state.failed.get() + 1);
                    continue;
                }
                state.degradation.note_ok();
                let (id, ip, node_secs) = *resolved.value::<(usize, f64, f64)>();
                state.node_time.set(state.node_time.get() + node_secs);
                state.database.borrow_mut().push((id, ip));
                if ip > state.params.ip_threshold {
                    state.found.set(state.found.get() + 1);
                }
                state
                    .found_curve
                    .borrow_mut()
                    .push((state.node_time.get(), state.found.get()));
                state.since_retrain.set(state.since_retrain.get() + 1);
                if state.params.steering == SteeringMode::ActiveLearning
                    && state.since_retrain.get() >= state.params.retrain_after
                    && !state.training_active.get()
                {
                    state.since_retrain.set(0);
                    state.training_active.set(true);
                    retrain.set();
                }
            }
        });
    }

    // --- Agent: ML pipeline (train ensemble → infer → reorder queue) ----
    {
        let state = Rc::clone(&state);
        let queues = queues.clone();
        let thinker2 = Rc::clone(&thinker);
        let retrain2 = retrain.clone();
        let sim2 = sim.clone();
        let mut rng = rng.substream(2);
        thinker.agent("ml-pipeline", async move {
            loop {
                retrain2.wait().await;
                retrain2.clear();
                if thinker2.is_done() {
                    break;
                }
                let round_started = sim2.now();
                let database = state.database.borrow().clone();
                if database.len() < 8 {
                    state.training_active.set(false);
                    continue;
                }

                // Train the ensemble: one GPU task per member; the model
                // is actually fitted inside the task.
                let n = state.params.ensemble_size;
                for member in 0..n {
                    let duration = cal::moldesign_train_duration().sample(&mut rng);
                    let compute = train_task(
                        Rc::clone(&state.lib),
                        database.clone(),
                        rng.substream(1000 + member as u64),
                        duration,
                    );
                    queues
                        .submit("train", vec![Payload::new(database.clone(), train_payload(&database))], compute)
                        .await;
                }
                // The molecule batch is shared by every inference task
                // of the round: proxy it once so later tasks hit the
                // already-transferred copy (the ahead-of-time caching
                // behind §V-D3's sub-100 ms resolves). The per-model
                // weights payload stays per-task.
                let shared_batch = match queues.store_for("infer") {
                    Some(store) => {
                        let key = store
                            .put_raw(
                                Rc::new(()),
                                cal::MOLDESIGN_INFER_BATCH_BYTES,
                                queues.thinker_site(),
                            )
                            .await
                            .expect("shared batch put");
                        Some(hetflow_store::UntypedProxy::new(
                            store,
                            key,
                            cal::MOLDESIGN_INFER_BATCH_BYTES,
                        ))
                    }
                    None => None,
                };
                // As each model finishes, immediately launch its
                // inference task (§V-D3: inference begins after the
                // *first* model completes training). A failed member
                // shrinks this round's ensemble instead of aborting it.
                let mut launched = 0usize;
                for _ in 0..n {
                    let Some(done) = queues.get_result("train").await else { return };
                    let resolved = done.resolve().await;
                    if resolved.is_shed() {
                        state.shed.set(state.shed.get() + 1);
                        state.degradation.note_shed();
                        continue;
                    }
                    if resolved.is_failed() {
                        state.failed.set(state.failed.get() + 1);
                        continue;
                    }
                    let model: Rc<RffRidge> = resolved.value::<RffRidge>();
                    let duration = cal::moldesign_infer_duration().sample(&mut rng);
                    let compute = infer_task(Rc::clone(&state.lib), model, duration);
                    let mut payloads = vec![Payload::new((), cal::MOLDESIGN_INFER_WEIGHTS_BYTES)];
                    match &shared_batch {
                        Some(proxy) => payloads.push(Payload::proxied(proxy.clone())),
                        None => {
                            payloads.push(Payload::new((), cal::MOLDESIGN_INFER_BATCH_BYTES))
                        }
                    }
                    queues.submit("infer", payloads, compute).await;
                    launched += 1;
                }
                // Gather the score vectors and reorder the queue by UCB.
                let mut score_sets: Vec<Rc<Vec<f64>>> = Vec::with_capacity(launched);
                for _ in 0..launched {
                    let Some(done) = queues.get_result("infer").await else { return };
                    let resolved = done.resolve().await;
                    if resolved.is_shed() {
                        state.shed.set(state.shed.get() + 1);
                        state.degradation.note_shed();
                        continue;
                    }
                    if resolved.is_failed() {
                        state.failed.set(state.failed.get() + 1);
                        continue;
                    }
                    score_sets.push(resolved.value::<Vec<f64>>());
                }
                if !score_sets.is_empty() {
                    reorder_queue(&state, &score_sets);
                }
                state
                    .ml_makespans
                    .borrow_mut()
                    .record((sim2.now() - round_started).as_secs_f64());
                state.training_active.set(false);
            }
        });
    }

    // Drive the simulation until the campaign quiesces.
    sim.run();

    let records = queues.records();
    let outcome = MolDesignOutcome {
        found: state.found.get(),
        simulations: state.database.borrow().len(),
        failed: state.failed.get(),
        shed: state.shed.get(),
        degradations: state.degradation.degradations(),
        found_curve: state.found_curve.borrow().clone(),
        ml_makespans: state.ml_makespans.borrow().clone(),
        cpu_idle: deployment.cpu_pool.idle_gaps(),
        records,
        end: sim.now(),
    };
    outcome
}

fn simulate_task(lib: Rc<MoleculeLibrary>, id: usize, duration: f64) -> TaskFn {
    Rc::new(move |_ctx| {
        let ip = lib.true_ip(id);
        TaskWork::new(
            (id, ip, duration),
            cal::MOLDESIGN_SIM_BYTES,
            hetflow_sim::time::secs(duration),
        )
    })
}

fn train_task(
    lib: Rc<MoleculeLibrary>,
    database: Vec<(usize, f64)>,
    member_rng: SimRng,
    duration: f64,
) -> TaskFn {
    let member_rng = RefCell::new(member_rng);
    Rc::new(move |_ctx| {
        let mut member_rng = member_rng.borrow_mut();
        let bag = bag_indices(database.len(), DEFAULT_BAG_FRACTION, &mut member_rng);
        let inputs: Vec<Vec<f64>> =
            bag.iter().map(|&i| lib.features(database[i].0).to_vec()).collect();
        let targets: Vec<f64> = bag.iter().map(|&i| database[i].1).collect();
        let model = RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut member_rng)
            .expect("surrogate fit failed");
        TaskWork::new(model, cal::MOLDESIGN_TRAIN_BYTES, hetflow_sim::time::secs(duration))
    })
}

fn infer_task(lib: Rc<MoleculeLibrary>, model: Rc<RffRidge>, duration: f64) -> TaskFn {
    Rc::new(move |_ctx| {
        let scores: Vec<f64> =
            (0..lib.len()).map(|i| model.predict(&lib.features(i))).collect();
        TaskWork::new(scores, cal::MOLDESIGN_INFER_OUT_BYTES, hetflow_sim::time::secs(duration))
    })
}

fn train_payload(database: &[(usize, f64)]) -> u64 {
    // Training data payload grows with the database; small next to the
    // 10 MB model, matching §III-A.
    (database.len() as u64) * 16 + 100_000
}

fn reorder_queue(state: &State, score_sets: &[Rc<Vec<f64>>]) {
    let n_lib = state.lib.len();
    let n_models = score_sets.len() as f64;
    let dispatched = state.dispatched.borrow();
    let mut ucb = vec![f64::NEG_INFINITY; n_lib];
    for (i, u) in ucb.iter_mut().enumerate() {
        if dispatched.contains(&i) {
            continue; // already simulated/in flight
        }
        let mut mean = 0.0;
        for s in score_sets {
            mean += s[i];
        }
        mean /= n_models;
        let mut var = 0.0;
        for s in score_sets {
            var += (s[i] - mean) * (s[i] - mean);
        }
        var /= n_models;
        *u = mean + state.params.kappa * var.sqrt();
    }
    // Keep the top candidates, best last (queue pops from the back).
    let keep = n_lib.min(4096);
    let mut best = top_k(&ucb, keep);
    best.retain(|&i| ucb[i] > f64::NEG_INFINITY);
    best.reverse();
    *state.queue.borrow_mut() = best;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
    use hetflow_sim::Tracer;

    fn quick_params() -> MolDesignParams {
        MolDesignParams {
            library_size: 2_000,
            budget: Duration::from_secs(4 * 3600),
            ensemble_size: 4,
            retrain_after: 8,
            ..Default::default()
        }
    }

    fn quick_spec() -> DeploymentSpec {
        DeploymentSpec { cpu_workers: 4, gpu_workers: 8, ..Default::default() }
    }

    #[test]
    fn campaign_completes_and_finds_molecules() {
        let sim = Sim::new();
        let d = deploy(&sim, WorkflowConfig::FnXGlobus, &quick_spec(), Tracer::disabled());
        let outcome = run(&sim, &d, quick_params());
        assert!(outcome.simulations > 100, "ran {} sims", outcome.simulations);
        assert!(outcome.found > 0, "found none");
        assert!(!outcome.ml_makespans.is_empty(), "no ML rounds completed");
        // Node-time budget respected (allow in-flight overshoot).
        let last = outcome.found_curve.last().unwrap().0;
        assert!(last < 4.0 * 3600.0 + 10.0 * 70.0, "node time {last}");
    }

    #[test]
    fn active_learning_beats_random_hit_rate() {
        let sim = Sim::new();
        let d = deploy(&sim, WorkflowConfig::FnXGlobus, &quick_spec(), Tracer::disabled());
        let params = quick_params();
        let lib_seed = params.seed;
        let outcome = run(&sim, &d, params.clone());
        let lib = MoleculeLibrary::generate(params.library_size, lib_seed);
        let base_rate = lib.ids_above(params.ip_threshold).len() as f64
            / params.library_size as f64;
        let hit_rate = outcome.found as f64 / outcome.simulations as f64;
        assert!(
            hit_rate > 3.0 * base_rate,
            "steering must beat random: hit {hit_rate:.4} vs base {base_rate:.4}"
        );
    }

    #[test]
    fn ml_makespan_in_plausible_range() {
        let sim = Sim::new();
        let d = deploy(&sim, WorkflowConfig::FnXGlobus, &quick_spec(), Tracer::disabled());
        let outcome = run(&sim, &d, quick_params());
        let m = outcome.ml_makespans.median();
        // Train ~340 s + infer ~900 s + movement: the paper reports
        // 1565–1828 s across configurations.
        assert!(m > 1000.0 && m < 3000.0, "ml makespan {m}");
    }

    #[test]
    fn deterministic_given_seed() {
        let go = || {
            let sim = Sim::new();
            let d = deploy(&sim, WorkflowConfig::ParslRedis, &quick_spec(), Tracer::disabled());
            let mut p = quick_params();
            p.budget = Duration::from_secs(3600);
            let o = run(&sim, &d, p);
            (o.found, o.simulations, o.end)
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn found_at_interpolates_curve() {
        let outcome = MolDesignOutcome {
            found: 3,
            simulations: 5,
            failed: 0,
            shed: 0,
            degradations: 0,
            found_curve: vec![(0.0, 0), (100.0, 1), (200.0, 3)],
            ml_makespans: Samples::new(),
            cpu_idle: Samples::new(),
            records: vec![],
            end: SimTime::ZERO,
        };
        assert_eq!(outcome.found_at(50.0), 0);
        assert_eq!(outcome.found_at(150.0), 1);
        assert_eq!(outcome.found_at(500.0), 3);
    }
}
