//! Structural analysis utilities: dimer curves and pair-correlation
//! functions.
//!
//! Used to sanity-check fitted surrogates against the reference surface
//! (a learned potential whose dimer curve has the wrong well is useless
//! regardless of force RMSD) and to compare sampled structure ensembles
//! with reference dynamics.

use crate::clusters::Structure;
use crate::pes::EnergyModel;

/// Energy of an isolated pair as a function of separation — the
/// classic diagnostic plot for any pair-dominated surface.
pub fn dimer_curve<M: EnergyModel>(model: &M, r_min: f64, r_max: f64, n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 2 && r_max > r_min && r_min > 0.0);
    (0..n)
        .map(|i| {
            let r = r_min + (r_max - r_min) * i as f64 / (n - 1) as f64;
            let s = Structure::new(vec![[0.0, 0.0, 0.0], [r, 0.0, 0.0]]);
            (r, model.energy(&s))
        })
        .collect()
}

/// The separation of the dimer-curve minimum (equilibrium bond length).
pub fn dimer_minimum<M: EnergyModel>(model: &M, r_min: f64, r_max: f64, n: usize) -> (f64, f64) {
    dimer_curve(model, r_min, r_max, n)
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("n >= 2")
}

/// Histogram of pairwise distances over a structure ensemble — an
/// (unnormalized) pair-correlation fingerprint g(r)·shell.
pub fn pair_histogram(structures: &[Structure], r_max: f64, bins: usize) -> Vec<f64> {
    assert!(bins >= 1 && r_max > 0.0);
    let mut hist = vec![0.0; bins];
    let mut pairs = 0.0;
    for s in structures {
        for (_, _, _, r) in s.pairs() {
            pairs += 1.0;
            if r < r_max {
                let bin = ((r / r_max) * bins as f64) as usize;
                hist[bin.min(bins - 1)] += 1.0;
            }
        }
    }
    if pairs > 0.0 {
        for h in &mut hist {
            *h /= pairs;
        }
    }
    hist
}

/// L1 distance between the pair histograms of two ensembles — a cheap
/// measure of how structurally similar two sets of samples are.
pub fn ensemble_distance(a: &[Structure], b: &[Structure], r_max: f64, bins: usize) -> f64 {
    let ha = pair_histogram(a, r_max, bins);
    let hb = pair_histogram(b, r_max, bins);
    ha.iter().zip(&hb).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::pretraining_set;
    use crate::md::{run_md, MdParams};
    use crate::pes::MorsePes;
    use hetflow_sim::SimRng;

    #[test]
    fn dimer_minimum_near_r0() {
        let pes = MorsePes::approx(); // r0 = 1.12
        let (r, e) = dimer_minimum(&pes, 0.7, 2.5, 400);
        assert!((r - 1.12).abs() < 0.02, "minimum at {r}");
        assert!(e < 0.0, "bound state");
    }

    #[test]
    fn reference_minimum_shifted_from_approx() {
        // The correction term shifts the equilibrium — the very thing
        // fine-tuning must learn.
        let (ra, _) = dimer_minimum(&MorsePes::approx(), 0.7, 2.5, 800);
        let (rr, _) = dimer_minimum(&MorsePes::reference(), 0.7, 2.5, 800);
        assert!((rr - ra).abs() > 0.005, "reference should differ: {ra} vs {rr}");
    }

    #[test]
    fn dimer_curve_repulsive_at_short_range() {
        let curve = dimer_curve(&MorsePes::approx(), 0.5, 2.5, 100);
        assert!(curve[0].1 > curve.last().unwrap().1, "short range must be repulsive");
    }

    #[test]
    fn pair_histogram_normalized() {
        let set = pretraining_set(10, 1);
        let hist = pair_histogram(&set, 5.0, 20);
        let sum: f64 = hist.iter().sum();
        assert!(sum <= 1.0 + 1e-9);
        assert!(sum > 0.8, "most pairs within 5.0: {sum}");
    }

    #[test]
    fn ensemble_distance_discriminates() {
        // MD at high temperature produces measurably different structure
        // statistics than the near-lattice starting set.
        let base = pretraining_set(8, 2);
        let pes = MorsePes::approx();
        let mut rng = SimRng::from_seed(3);
        let hot: Vec<_> = base
            .iter()
            .map(|s| {
                run_md(
                    &pes,
                    s,
                    MdParams { dt: 0.005, steps: 400, init_temp: 0.6, sample_every: 400 },
                    &mut rng,
                )
                .last()
                .clone()
            })
            .collect();
        let self_dist = ensemble_distance(&base, &base, 4.0, 24);
        let cross_dist = ensemble_distance(&base, &hot, 4.0, 24);
        assert!(self_dist < 1e-12);
        assert!(cross_dist > 0.02, "hot ensemble must differ: {cross_dist}");
    }
}
