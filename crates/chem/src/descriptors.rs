//! Permutation-invariant structure descriptors.
//!
//! A smooth radial fingerprint: Gaussian-binned histogram of pairwise
//! distances. Used by the fine-tuning application's uncertainty pool to
//! compare structures and by energy surrogates that want a global
//! feature vector.

use crate::clusters::Structure;

/// Radial-basis descriptor parameters.
#[derive(Clone, Debug)]
pub struct RadialDescriptor {
    centers: Vec<f64>,
    width: f64,
}

impl RadialDescriptor {
    /// `k` Gaussian centers uniformly spanning `[r_min, r_max]` with
    /// width `width`.
    pub fn new(k: usize, r_min: f64, r_max: f64, width: f64) -> Self {
        assert!(k >= 2 && r_max > r_min && width > 0.0);
        let centers = (0..k)
            .map(|i| r_min + (r_max - r_min) * i as f64 / (k - 1) as f64)
            .collect();
        RadialDescriptor { centers, width }
    }

    /// A default suitable for the solvated-methane clusters.
    pub fn default_for_clusters() -> Self {
        RadialDescriptor::new(16, 0.6, 3.0, 0.25)
    }

    /// Descriptor dimension.
    pub fn dim(&self) -> usize {
        self.centers.len()
    }

    /// Computes the descriptor of `s`, normalized by the number of
    /// pairs so clusters of different sizes are comparable.
    pub fn compute(&self, s: &Structure) -> Vec<f64> {
        let mut d = vec![0.0; self.centers.len()];
        let mut pairs = 0.0;
        for (_, _, _, r) in s.pairs() {
            pairs += 1.0;
            for (k, &c) in self.centers.iter().enumerate() {
                let z = (r - c) / self.width;
                d[k] += (-0.5 * z * z).exp();
            }
        }
        for v in &mut d {
            *v /= pairs;
        }
        d
    }

    /// Euclidean distance between the descriptors of two structures.
    pub fn distance(&self, a: &Structure, b: &Structure) -> f64 {
        let da = self.compute(a);
        let db = self.compute(b);
        da.iter().zip(&db).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::{solvated_methane, Structure};

    #[test]
    fn permutation_invariant() {
        let s = solvated_methane(1);
        let mut permuted = s.positions.clone();
        permuted.reverse();
        let p = Structure::new(permuted);
        let d = RadialDescriptor::default_for_clusters();
        let a = d.compute(&s);
        let b = d.compute(&p);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn translation_invariant() {
        let s = solvated_methane(2);
        let mut moved = s.clone();
        for p in &mut moved.positions {
            p[0] += 3.0;
            p[1] -= 1.0;
        }
        let d = RadialDescriptor::default_for_clusters();
        assert!(d.distance(&s, &moved) < 1e-12);
    }

    #[test]
    fn distinguishes_different_structures() {
        let d = RadialDescriptor::default_for_clusters();
        let a = solvated_methane(1);
        let b = solvated_methane(2);
        assert!(d.distance(&a, &b) > 1e-4);
    }

    #[test]
    fn smooth_under_small_perturbation() {
        let d = RadialDescriptor::default_for_clusters();
        let a = solvated_methane(3);
        let mut nudged = a.clone();
        nudged.positions[0][0] += 1e-4;
        assert!(d.distance(&a, &nudged) < 1e-3);
    }

    #[test]
    fn dimension_matches() {
        let d = RadialDescriptor::new(8, 0.5, 2.5, 0.2);
        assert_eq!(d.dim(), 8);
        assert_eq!(d.compute(&solvated_methane(1)).len(), 8);
    }
}
