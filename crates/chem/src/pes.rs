//! Two-fidelity synthetic potential-energy surface with analytic forces.
//!
//! Stands in for the TTM (cheap, approximate) and DFT/PBE0 (expensive,
//! accurate) levels of theory in §III-B. Both levels are sums of Morse
//! pair potentials; the "DFT" level adds a second, shifted Morse term so
//! the *difference* between levels is smooth and learnable — exactly the
//! property that makes fine-tuning on a few DFT calculations work in the
//! paper's application.

use crate::clusters::{Structure, Vec3};

/// A force/energy provider over structures.
///
/// Implemented by physical surfaces here and by ML surrogates in
/// `hetflow-ml`, so molecular dynamics can run on either.
pub trait EnergyModel {
    /// Total energy and per-atom forces of `s`.
    fn energy_forces(&self, s: &Structure) -> (f64, Vec<Vec3>);

    /// Energy only (default: discard forces).
    fn energy(&self, s: &Structure) -> f64 {
        self.energy_forces(s).0
    }
}

/// One Morse term: `D (1 - exp(-a (r - r0)))^2 - D`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MorseTerm {
    /// Well depth.
    pub d: f64,
    /// Stiffness.
    pub a: f64,
    /// Equilibrium distance.
    pub r0: f64,
}

impl MorseTerm {
    /// Energy at separation `r`.
    pub fn energy(&self, r: f64) -> f64 {
        let e = 1.0 - (-self.a * (r - self.r0)).exp();
        self.d * e * e - self.d
    }

    /// dE/dr at separation `r`.
    pub fn denergy(&self, r: f64) -> f64 {
        let x = (-self.a * (r - self.r0)).exp();
        2.0 * self.d * (1.0 - x) * self.a * x
    }
}

/// A pair potential: a sum of Morse terms over all atom pairs, with a
/// *shifted-force* cutoff so both energy and force are continuous at the
/// cutoff (pairs drifting across it would otherwise inject energy and
/// break NVE conservation).
#[derive(Clone, Debug, PartialEq)]
pub struct MorsePes {
    terms: Vec<MorseTerm>,
    /// Interaction cutoff; pairs beyond it contribute nothing.
    pub cutoff: f64,
    /// Σ term energies at the cutoff (shift constant).
    e_cut: f64,
    /// Σ term dE/dr at the cutoff (force-shift constant).
    de_cut: f64,
}

impl MorsePes {
    /// Builds a surface from Morse terms.
    pub fn new(terms: Vec<MorseTerm>, cutoff: f64) -> Self {
        assert!(!terms.is_empty());
        let e_cut = terms.iter().map(|t| t.energy(cutoff)).sum();
        let de_cut = terms.iter().map(|t| t.denergy(cutoff)).sum();
        MorsePes { terms, cutoff, e_cut, de_cut }
    }

    /// The cheap approximate level ("TTM-like"): a single Morse well.
    pub fn approx() -> Self {
        MorsePes::new(vec![MorseTerm { d: 1.0, a: 2.0, r0: 1.12 }], 3.0)
    }

    /// The reference level ("DFT-like"): the approximate well plus a
    /// smooth correction term (slightly shifted equilibrium, softer
    /// tail). The correction is what fine-tuning must learn.
    pub fn reference() -> Self {
        MorsePes::new(
            vec![
                MorseTerm { d: 1.0, a: 2.0, r0: 1.12 },
                MorseTerm { d: 0.22, a: 1.1, r0: 1.55 },
            ],
            3.0,
        )
    }
}

impl EnergyModel for MorsePes {
    fn energy_forces(&self, s: &Structure) -> (f64, Vec<Vec3>) {
        let mut energy = 0.0;
        let mut forces = vec![[0.0; 3]; s.n_atoms()];
        for (i, j, dvec, r) in s.pairs() {
            if r > self.cutoff {
                continue;
            }
            let mut e_pair = 0.0;
            let mut de = 0.0;
            for t in &self.terms {
                e_pair += t.energy(r);
                de += t.denergy(r);
            }
            // Shifted-force correction: continuous E and dE/dr at rc.
            energy += e_pair - self.e_cut - (r - self.cutoff) * self.de_cut;
            de -= self.de_cut;
            // F_i = -dE/dr * (r_i - r_j)/r ; F_j = -F_i
            let scale = -de / r;
            for k in 0..3 {
                forces[i][k] += scale * dvec[k];
                forces[j][k] -= scale * dvec[k];
            }
        }
        (energy, forces)
    }
}

/// Numerically differentiates any [`EnergyModel`] (central differences);
/// used in tests and as a reference for surrogate force errors.
pub fn numerical_forces<M: EnergyModel>(model: &M, s: &Structure, h: f64) -> Vec<Vec3> {
    let mut forces = vec![[0.0; 3]; s.n_atoms()];
    let mut work = s.clone();
    for i in 0..s.n_atoms() {
        for k in 0..3 {
            let orig = work.positions[i][k];
            work.positions[i][k] = orig + h;
            let ep = model.energy(&work);
            work.positions[i][k] = orig - h;
            let em = model.energy(&work);
            work.positions[i][k] = orig;
            forces[i][k] = -(ep - em) / (2.0 * h);
        }
    }
    forces
}

/// Root-mean-square deviation between two force sets (the Fig. 7a
/// metric, "RMSD in predicted forces").
pub fn force_rmsd(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = (a.len() * 3) as f64;
    let ss: f64 = a
        .iter()
        .zip(b)
        .map(|(fa, fb)| {
            (fa[0] - fb[0]).powi(2) + (fa[1] - fb[1]).powi(2) + (fa[2] - fb[2]).powi(2)
        })
        .sum();
    (ss / n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::solvated_methane;

    #[test]
    fn morse_minimum_at_r0() {
        let t = MorseTerm { d: 1.0, a: 2.0, r0: 1.12 };
        assert!((t.energy(1.12) - (-1.0)).abs() < 1e-12);
        assert!(t.denergy(1.12).abs() < 1e-12);
        assert!(t.energy(1.0) > t.energy(1.12));
        assert!(t.energy(1.3) > t.energy(1.12));
    }

    #[test]
    fn analytic_forces_match_numerical() {
        let s = solvated_methane(3);
        for pes in [MorsePes::approx(), MorsePes::reference()] {
            let (_, analytic) = pes.energy_forces(&s);
            let numeric = numerical_forces(&pes, &s, 1e-6);
            let err = force_rmsd(&analytic, &numeric);
            assert!(err < 1e-6, "force error {err}");
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        // Pair potentials conserve momentum: net force vanishes.
        let s = solvated_methane(4);
        let (_, forces) = MorsePes::reference().energy_forces(&s);
        for k in 0..3 {
            let net: f64 = forces.iter().map(|f| f[k]).sum();
            assert!(net.abs() < 1e-10, "net force component {net}");
        }
    }

    #[test]
    fn reference_differs_smoothly_from_approx() {
        let approx = MorsePes::approx();
        let refr = MorsePes::reference();
        let mut diffs = Vec::new();
        for seed in 0..10 {
            let s = solvated_methane(seed);
            diffs.push(refr.energy(&s) - approx.energy(&s));
        }
        // The correction is nonzero...
        assert!(diffs.iter().any(|d| d.abs() > 1e-3));
        // ...and consistently signed/structured (attractive tail), not
        // random noise.
        let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
        assert!(mean.abs() > 0.01, "correction should be systematic, mean {mean}");
    }

    #[test]
    fn cutoff_excludes_far_pairs() {
        let s = Structure::new(vec![[0.0; 3], [10.0, 0.0, 0.0]]);
        let pes = MorsePes::approx();
        let (e, f) = pes.energy_forces(&s);
        assert_eq!(e, 0.0);
        assert!(f.iter().all(|v| *v == [0.0; 3]));
    }

    #[test]
    fn force_rmsd_basics() {
        let a = vec![[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]];
        let b = vec![[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]];
        assert!((force_rmsd(&a, &a)).abs() < 1e-15);
        assert!((force_rmsd(&a, &b) - (1.0f64 / 6.0).sqrt()).abs() < 1e-12);
    }
}
