//! Atomic cluster structures for the surrogate fine-tuning application.
//!
//! Stands in for the HydroNet water clusters and methane-in-water
//! structures of §III-B. A [`Structure`] is a set of 3-D atomic
//! positions (reduced units, unit masses); generators produce jittered
//! near-lattice clusters whose geometry is deterministic per seed.

use hetflow_sim::SimRng;

/// A 3-D vector.
pub type Vec3 = [f64; 3];

/// An atomic cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct Structure {
    /// Atom positions (reduced units).
    pub positions: Vec<Vec3>,
}

impl Structure {
    /// Builds a structure from positions.
    pub fn new(positions: Vec<Vec3>) -> Self {
        assert!(positions.len() >= 2, "a cluster needs at least two atoms");
        Structure { positions }
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.positions.len()
    }

    /// Distance between atoms `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        let a = self.positions[i];
        let b = self.positions[j];
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
    }

    /// Iterates over all `i < j` pairs with their separation vector and
    /// distance: `(i, j, rij_vec, rij)`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, Vec3, f64)> + '_ {
        let n = self.n_atoms();
        (0..n).flat_map(move |i| {
            (i + 1..n).map(move |j| {
                let a = self.positions[i];
                let b = self.positions[j];
                let d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                (i, j, d, r)
            })
        })
    }

    /// Minimum interatomic distance.
    pub fn min_distance(&self) -> f64 {
        self.pairs().map(|(_, _, _, r)| r).fold(f64::INFINITY, f64::min)
    }

    /// Centroid of the cluster.
    pub fn centroid(&self) -> Vec3 {
        let n = self.n_atoms() as f64;
        let mut c = [0.0; 3];
        for p in &self.positions {
            c[0] += p[0] / n;
            c[1] += p[1] / n;
            c[2] += p[2] / n;
        }
        c
    }

    /// Root-mean-square displacement from another structure with the
    /// same atom count.
    pub fn rmsd_to(&self, other: &Structure) -> f64 {
        assert_eq!(self.n_atoms(), other.n_atoms(), "atom count mismatch");
        let ss: f64 = self
            .positions
            .iter()
            .zip(&other.positions)
            .map(|(a, b)| {
                (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
            })
            .sum();
        (ss / self.n_atoms() as f64).sqrt()
    }
}

/// Generates a jittered cubic cluster of `n_atoms` atoms with nominal
/// nearest-neighbour spacing `spacing` and positional jitter `jitter`
/// (fractions of the spacing).
pub fn jittered_cluster(n_atoms: usize, spacing: f64, jitter: f64, rng: &mut SimRng) -> Structure {
    assert!(n_atoms >= 2);
    let side = (n_atoms as f64).cbrt().ceil() as usize;
    let mut positions = Vec::with_capacity(n_atoms);
    'outer: for ix in 0..side {
        for iy in 0..side {
            for iz in 0..side {
                if positions.len() == n_atoms {
                    break 'outer;
                }
                positions.push([
                    spacing * (ix as f64 + jitter * (rng.unit() - 0.5)),
                    spacing * (iy as f64 + jitter * (rng.unit() - 0.5)),
                    spacing * (iz as f64 + jitter * (rng.unit() - 0.5)),
                ]);
            }
        }
    }
    Structure::new(positions)
}

/// The default solvated-methane stand-in: a 16-atom jittered cluster at
/// near-equilibrium spacing for [`crate::pes::MorsePes::approx`].
pub fn solvated_methane(seed: u64) -> Structure {
    let mut rng = SimRng::stream(seed, "solvated-methane");
    jittered_cluster(16, 1.12, 0.25, &mut rng)
}

/// Generates the pre-training set: `n` clusters with wider jitter, the
/// stand-in for the HydroNet water-cluster energies.
pub fn pretraining_set(n: usize, seed: u64) -> Vec<Structure> {
    let mut rng = SimRng::stream(seed, "pretraining-set");
    (0..n).map(|_| jittered_cluster(16, 1.12, 0.45, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_has_requested_atoms() {
        let mut rng = SimRng::from_seed(1);
        let s = jittered_cluster(16, 1.1, 0.2, &mut rng);
        assert_eq!(s.n_atoms(), 16);
    }

    #[test]
    fn atoms_do_not_overlap() {
        let mut rng = SimRng::from_seed(2);
        for _ in 0..20 {
            let s = jittered_cluster(16, 1.1, 0.4, &mut rng);
            assert!(s.min_distance() > 0.3, "min dist {}", s.min_distance());
        }
    }

    #[test]
    fn pairs_cover_all_unordered_pairs() {
        let mut rng = SimRng::from_seed(3);
        let s = jittered_cluster(8, 1.0, 0.1, &mut rng);
        let pairs: Vec<_> = s.pairs().collect();
        assert_eq!(pairs.len(), 8 * 7 / 2);
        for (i, j, d, r) in pairs {
            assert!(i < j);
            let manual = s.distance(i, j);
            assert!((r - manual).abs() < 1e-12);
            let norm = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((norm - r).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_generators() {
        assert_eq!(solvated_methane(5), solvated_methane(5));
        assert_ne!(solvated_methane(5), solvated_methane(6));
        let a = pretraining_set(3, 9);
        let b = pretraining_set(3, 9);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "set members must differ");
    }

    #[test]
    fn rmsd_properties() {
        let s = solvated_methane(1);
        assert_eq!(s.rmsd_to(&s), 0.0);
        let mut moved = s.clone();
        for p in &mut moved.positions {
            p[0] += 0.5;
        }
        assert!((s.rmsd_to(&moved) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_symmetric_pair() {
        let s = Structure::new(vec![[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]]);
        assert_eq!(s.centroid(), [1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least two atoms")]
    fn single_atom_rejected() {
        let _ = Structure::new(vec![[0.0; 3]]);
    }
}
