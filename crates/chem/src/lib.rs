//! # hetflow-chem — synthetic chemistry substrates
//!
//! The paper's applications call real quantum-chemistry codes (xTB for
//! ionization potentials, Psi4/DFT for cluster energies and forces) on
//! real datasets (MOSES, HydroNet). Those are unavailable here, so this
//! crate provides synthetic equivalents that preserve what the workflow
//! experiments need:
//!
//! * [`MoleculeLibrary`] — a deterministic candidate set whose hidden
//!   ionization-potential function is smooth (learnable by a surrogate)
//!   with a calibrated ~2 % tail above the paper's IP > 14 threshold.
//! * [`MorsePes`] — a two-fidelity potential-energy surface (approximate
//!   vs reference level) with analytic forces; the inter-level
//!   difference is smooth, so fine-tuning on few reference calculations
//!   works, as in §III-B.
//! * [`run_md`] — velocity-Verlet dynamics on any [`EnergyModel`]
//!   (physical surfaces or ML surrogates) for the sampling tasks.
//! * [`RadialDescriptor`] — permutation/translation-invariant structure
//!   fingerprints.
//!
//! ```
//! use hetflow_chem::{run_md, solvated_methane, EnergyModel, MdParams, MorsePes};
//! use hetflow_sim::SimRng;
//!
//! let start = solvated_methane(1);
//! let reference = MorsePes::reference();
//! let mut rng = SimRng::from_seed(1);
//! let traj = run_md(&reference, &start, MdParams::default(), &mut rng);
//! assert!(traj.energy_drift() < 0.5);
//! let (energy, forces) = reference.energy_forces(traj.last());
//! assert!(energy < 0.0 && forces.len() == start.n_atoms());
//! ```

// Index loops are the clearest form for the numeric kernels here.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod clusters;
pub mod descriptors;
pub mod md;
pub mod molecules;
pub mod pes;
pub mod threebody;

pub use analysis::{dimer_curve, dimer_minimum, ensemble_distance, pair_histogram};
pub use clusters::{jittered_cluster, pretraining_set, solvated_methane, Structure, Vec3};
pub use descriptors::RadialDescriptor;
pub use md::{kinetic_energy, run_md, thermal_velocities, MdParams, Trajectory};
pub use molecules::{MoleculeLibrary, N_FEATURES};
pub use pes::{force_rmsd, numerical_forces, EnergyModel, MorsePes, MorseTerm};
pub use threebody::{harder_reference, AxilrodTeller, CompositePes};
