//! Molecular dynamics: velocity-Verlet integration on any
//! [`EnergyModel`].
//!
//! The sampling tasks of §III-B run short MD trajectories *on the
//! trained surrogate* to propose new structures: "initializing the
//! temperature of a structure ... to 100K, then running molecular
//! dynamics for a set number of timesteps", ramping 20 → 1000 steps as
//! the model improves. Unit masses, reduced units, k_B = 1.

use crate::clusters::{Structure, Vec3};
use crate::pes::EnergyModel;
use hetflow_sim::SimRng;

/// Result of one MD run.
#[derive(Clone, Debug)]
pub struct Trajectory {
    /// Structures at each sampled frame (every `sample_every` steps,
    /// plus the final frame).
    pub frames: Vec<Structure>,
    /// Total energy (kinetic + potential) at the sampled frames.
    pub total_energy: Vec<f64>,
}

impl Trajectory {
    /// The last frame.
    pub fn last(&self) -> &Structure {
        self.frames.last().expect("trajectory has at least one frame")
    }

    /// Maximum absolute drift of total energy relative to the first
    /// sampled frame.
    pub fn energy_drift(&self) -> f64 {
        let e0 = self.total_energy[0];
        self.total_energy.iter().map(|e| (e - e0).abs()).fold(0.0, f64::max)
    }
}

/// MD parameters.
#[derive(Clone, Copy, Debug)]
pub struct MdParams {
    /// Timestep (reduced units).
    pub dt: f64,
    /// Number of steps.
    pub steps: usize,
    /// Initial temperature (velocity variance scale, k_B = 1, m = 1).
    pub init_temp: f64,
    /// Keep a frame every this many steps (the final frame is always
    /// kept).
    pub sample_every: usize,
}

impl Default for MdParams {
    fn default() -> Self {
        MdParams { dt: 0.01, steps: 100, init_temp: 0.1, sample_every: 10 }
    }
}

/// Draws Maxwell–Boltzmann velocities at `temp` and removes the net
/// momentum so the cluster does not drift.
pub fn thermal_velocities(n_atoms: usize, temp: f64, rng: &mut SimRng) -> Vec<Vec3> {
    let sigma = temp.max(0.0).sqrt();
    let mut v: Vec<Vec3> = (0..n_atoms)
        .map(|_| {
            [
                sigma * rng.standard_normal(),
                sigma * rng.standard_normal(),
                sigma * rng.standard_normal(),
            ]
        })
        .collect();
    let n = n_atoms as f64;
    for k in 0..3 {
        let mean: f64 = v.iter().map(|vi| vi[k]).sum::<f64>() / n;
        for vi in &mut v {
            vi[k] -= mean;
        }
    }
    v
}

/// Kinetic energy of a velocity set (unit masses).
pub fn kinetic_energy(v: &[Vec3]) -> f64 {
    0.5 * v.iter().map(|vi| vi[0] * vi[0] + vi[1] * vi[1] + vi[2] * vi[2]).sum::<f64>()
}

/// Runs velocity-Verlet MD from `start` on `model`.
pub fn run_md<M: EnergyModel>(
    model: &M,
    start: &Structure,
    params: MdParams,
    rng: &mut SimRng,
) -> Trajectory {
    assert!(params.dt > 0.0 && params.steps > 0);
    let n = start.n_atoms();
    let mut s = start.clone();
    let mut v = thermal_velocities(n, params.init_temp, rng);
    let (mut pe, mut f) = model.energy_forces(&s);
    let mut frames = Vec::new();
    let mut energies = Vec::new();
    frames.push(s.clone());
    energies.push(pe + kinetic_energy(&v));

    let dt = params.dt;
    for step in 1..=params.steps {
        // Half kick, drift, recompute, half kick.
        for i in 0..n {
            for k in 0..3 {
                v[i][k] += 0.5 * dt * f[i][k];
                s.positions[i][k] += dt * v[i][k];
            }
        }
        let (pe2, f2) = model.energy_forces(&s);
        pe = pe2;
        f = f2;
        for i in 0..n {
            for k in 0..3 {
                v[i][k] += 0.5 * dt * f[i][k];
            }
        }
        if step % params.sample_every.max(1) == 0 || step == params.steps {
            frames.push(s.clone());
            energies.push(pe + kinetic_energy(&v));
        }
    }
    Trajectory { frames, total_energy: energies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::solvated_methane;
    use crate::pes::MorsePes;

    #[test]
    fn thermal_velocities_zero_momentum() {
        let mut rng = SimRng::from_seed(1);
        let v = thermal_velocities(32, 0.5, &mut rng);
        for k in 0..3 {
            let net: f64 = v.iter().map(|vi| vi[k]).sum();
            assert!(net.abs() < 1e-12);
        }
    }

    #[test]
    fn thermal_velocities_match_temperature() {
        let mut rng = SimRng::from_seed(2);
        let v = thermal_velocities(4000, 0.25, &mut rng);
        // <v_k^2> = T for unit mass, k_B = 1 (per component).
        let msq: f64 =
            v.iter().map(|vi| vi[0] * vi[0]).sum::<f64>() / v.len() as f64;
        assert!((msq - 0.25).abs() < 0.02, "got {msq}");
    }

    #[test]
    fn md_conserves_energy_with_small_dt() {
        let s = solvated_methane(1);
        let pes = MorsePes::reference();
        let mut rng = SimRng::from_seed(3);
        let traj = run_md(
            &pes,
            &s,
            MdParams { dt: 0.002, steps: 500, init_temp: 0.05, sample_every: 50 },
            &mut rng,
        );
        assert!(traj.energy_drift() < 0.02, "drift {}", traj.energy_drift());
    }

    #[test]
    fn energy_drift_grows_with_dt() {
        let s = solvated_methane(1);
        let pes = MorsePes::reference();
        let drift = |dt: f64| {
            let mut rng = SimRng::from_seed(3); // same velocities
            run_md(
                &pes,
                &s,
                MdParams { dt, steps: 200, init_temp: 0.05, sample_every: 20 },
                &mut rng,
            )
            .energy_drift()
        };
        let small = drift(0.002);
        let large = drift(0.02);
        assert!(large > 2.0 * small, "small {small}, large {large}");
    }

    #[test]
    fn md_produces_displaced_structures() {
        let s = solvated_methane(2);
        let pes = MorsePes::approx();
        let mut rng = SimRng::from_seed(4);
        let traj = run_md(
            &pes,
            &s,
            MdParams { dt: 0.01, steps: 200, init_temp: 0.2, sample_every: 50 },
            &mut rng,
        );
        let moved = s.rmsd_to(traj.last());
        assert!(moved > 0.01, "MD must move atoms, rmsd {moved}");
        assert!(moved < 5.0, "cluster must not explode, rmsd {moved}");
    }

    #[test]
    fn longer_runs_move_further() {
        // The §III-B tradeoff: more timesteps, more diversity.
        let s = solvated_methane(2);
        let pes = MorsePes::approx();
        let dist_after = |steps: usize| {
            let mut rng = SimRng::from_seed(5);
            let traj = run_md(
                &pes,
                &s,
                MdParams { dt: 0.01, steps, init_temp: 0.15, sample_every: steps },
                &mut rng,
            );
            s.rmsd_to(traj.last())
        };
        let short = dist_after(20);
        let long = dist_after(1000);
        assert!(long > short, "short {short}, long {long}");
    }

    #[test]
    fn frames_sampled_at_interval() {
        let s = solvated_methane(1);
        let pes = MorsePes::approx();
        let mut rng = SimRng::from_seed(6);
        let traj = run_md(
            &pes,
            &s,
            MdParams { dt: 0.005, steps: 100, init_temp: 0.1, sample_every: 25 },
            &mut rng,
        );
        // initial + steps 25, 50, 75, 100
        assert_eq!(traj.frames.len(), 5);
        assert_eq!(traj.total_energy.len(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = solvated_methane(1);
        let pes = MorsePes::reference();
        let run = || {
            let mut rng = SimRng::from_seed(7);
            run_md(&pes, &s, MdParams::default(), &mut rng).last().clone()
        };
        assert_eq!(run(), run());
    }
}
