//! Three-body interactions: an Axilrod–Teller-style triple-dipole term
//! and a composite surface combining pair and three-body parts.
//!
//! The basic reproduction uses pair-only surfaces at both fidelity
//! levels, which a pair-basis surrogate can represent *exactly* —
//! convenient, but it makes fine-tuning look easier than it is. Adding
//! a three-body term to the reference level creates an irreducible
//! model-form error for the pair surrogate, which is the realistic
//! regime for the paper's SchNet-vs-DFT setup; the `harder_reference`
//! ablation measures that error floor.

use crate::clusters::{Structure, Vec3};
use crate::pes::EnergyModel;

/// Axilrod–Teller triple-dipole term with an exponential range cutoff:
/// `E = ν Σ_{i<j<k} (1 + 3 cos θ_i cos θ_j cos θ_k) / (r_ij r_jk r_ik)³`
/// multiplied by `exp(-(r_ij + r_jk + r_ik)/ρ)` for locality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AxilrodTeller {
    /// Strength ν.
    pub nu: f64,
    /// Range ρ of the exponential damping.
    pub rho: f64,
}

impl AxilrodTeller {
    /// A mild, short-ranged default: a few percent of the pair energy
    /// for compact clusters.
    pub fn mild() -> Self {
        AxilrodTeller { nu: 0.15, rho: 2.2 }
    }

    fn triple_energy(&self, rij: f64, rjk: f64, rik: f64, cos_prod: f64) -> f64 {
        let damp = (-(rij + rjk + rik) / self.rho).exp();
        self.nu * (1.0 + 3.0 * cos_prod) / (rij * rjk * rik).powi(3) * damp
    }
}

impl EnergyModel for AxilrodTeller {
    fn energy_forces(&self, s: &Structure) -> (f64, Vec<Vec3>) {
        // Forces via central differences on the (cheap) energy — the
        // term is a correction, not the hot path.
        let energy = at_energy(self, s);
        let forces = crate::pes::numerical_forces(self, s, 1e-6);
        (energy, forces)
    }

    fn energy(&self, s: &Structure) -> f64 {
        at_energy(self, s)
    }
}

fn at_energy(at: &AxilrodTeller, s: &Structure) -> f64 {
    let n = s.n_atoms();
    let p = &s.positions;
    let mut e = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            for k in j + 1..n {
                let rij = dist(p[i], p[j]);
                let rjk = dist(p[j], p[k]);
                let rik = dist(p[i], p[k]);
                // cos θ_i at vertex i between j and k, etc.
                let ci = cos_at(p[i], p[j], p[k]);
                let cj = cos_at(p[j], p[i], p[k]);
                let ck = cos_at(p[k], p[i], p[j]);
                e += at.triple_energy(rij, rjk, rik, ci * cj * ck);
            }
        }
    }
    e
}

fn dist(a: Vec3, b: Vec3) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

fn cos_at(v: Vec3, a: Vec3, b: Vec3) -> f64 {
    let u = [a[0] - v[0], a[1] - v[1], a[2] - v[2]];
    let w = [b[0] - v[0], b[1] - v[1], b[2] - v[2]];
    let dot = u[0] * w[0] + u[1] * w[1] + u[2] * w[2];
    let nu = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
    let nw = (w[0] * w[0] + w[1] * w[1] + w[2] * w[2]).sqrt();
    dot / (nu * nw).max(1e-12)
}

/// A surface that is the sum of two models (e.g. pair + three-body).
#[derive(Clone, Debug)]
pub struct CompositePes<A, B> {
    /// First component.
    pub a: A,
    /// Second component.
    pub b: B,
}

impl<A: EnergyModel, B: EnergyModel> EnergyModel for CompositePes<A, B> {
    fn energy_forces(&self, s: &Structure) -> (f64, Vec<Vec3>) {
        let (ea, mut fa) = self.a.energy_forces(s);
        let (eb, fb) = self.b.energy_forces(s);
        for (x, y) in fa.iter_mut().zip(&fb) {
            for k in 0..3 {
                x[k] += y[k];
            }
        }
        (ea + eb, fa)
    }
}

/// The "harder" reference level: the standard reference pair surface
/// plus a mild three-body term. A pair-basis surrogate cannot represent
/// this exactly, giving fine-tuning a realistic error floor.
pub fn harder_reference() -> CompositePes<crate::pes::MorsePes, AxilrodTeller> {
    CompositePes { a: crate::pes::MorsePes::reference(), b: AxilrodTeller::mild() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clusters::{solvated_methane, Structure};
    use crate::pes::{force_rmsd, MorsePes};

    #[test]
    fn triangle_energy_sign_and_symmetry() {
        let at = AxilrodTeller::mild();
        // Equilateral triangle: cos 60° each => 1 + 3/8 > 0.
        let s = Structure::new(vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.5, 3f64.sqrt() / 2.0, 0.0],
        ]);
        let e = at.energy(&s);
        assert!(e > 0.0, "equilateral AT term is repulsive: {e}");
        // Permutation invariance.
        let mut permuted = s.positions.clone();
        permuted.swap(0, 2);
        let e2 = at.energy(&Structure::new(permuted));
        assert!((e - e2).abs() < 1e-12);
    }

    #[test]
    fn collinear_triple_is_attractive() {
        // Near-collinear: cosθ at the middle atom ≈ −1, ends ≈ +1 →
        // (1 + 3·cᵢcⱼcₖ) < 0.
        let at = AxilrodTeller::mild();
        let s = Structure::new(vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [2.0, 0.01, 0.0],
        ]);
        assert!(at.energy(&s) < 0.0);
    }

    #[test]
    fn three_body_is_a_small_correction() {
        let s = solvated_methane(1);
        let pair = MorsePes::reference().energy(&s).abs();
        let three = AxilrodTeller::mild().energy(&s).abs();
        assert!(three > 1e-4, "term must be nonzero: {three}");
        assert!(three < 0.25 * pair, "but still a correction: {three} vs {pair}");
    }

    #[test]
    fn composite_adds_components() {
        let s = solvated_methane(2);
        let pair = MorsePes::reference();
        let at = AxilrodTeller::mild();
        let composite = harder_reference();
        let e = composite.energy(&s);
        assert!((e - (pair.energy(&s) + at.energy(&s))).abs() < 1e-12);
        let (_, f) = composite.energy_forces(&s);
        assert_eq!(f.len(), s.n_atoms());
    }

    #[test]
    fn pair_surrogate_hits_error_floor_on_harder_reference() {
        // Fit a pair basis against (a) the pair-only reference and
        // (b) the pair+three-body reference: the latter must leave a
        // clearly larger residual force error — the irreducible
        // model-form gap.
        use crate::clusters::pretraining_set;
        use crate::pes::EnergyModel as _;
        let train = pretraining_set(40, 7);
        let test = pretraining_set(8, 77);

        // Minimal inline pair-fit: reuse the ml crate is impossible here
        // (dependency direction), so check the premise directly: the
        // three-body forces are not expressible as central pair forces,
        // i.e. projecting them onto pair directions leaves a residual.
        let at = AxilrodTeller::mild();
        let mut max_residual: f64 = 0.0;
        for s in &test {
            let (_, f3) = at.energy_forces(s);
            // Net torque-free and translation-free is guaranteed; the
            // residual we check: three-body force on atom i is not a sum
            // of contributions along pair directions with *pair-distance
            // dependent* magnitudes. Cheap proxy: compare f3 against the
            // best single scalar multiple of the pair-surface forces.
            let (_, fp) = MorsePes::reference().energy_forces(s);
            let dot: f64 = f3
                .iter()
                .zip(&fp)
                .map(|(a, b)| a[0] * b[0] + a[1] * b[1] + a[2] * b[2])
                .sum();
            let norm: f64 = fp
                .iter()
                .map(|b| b[0] * b[0] + b[1] * b[1] + b[2] * b[2])
                .sum();
            let alpha = if norm > 0.0 { dot / norm } else { 0.0 };
            let proj: Vec<[f64; 3]> = fp
                .iter()
                .map(|b| [alpha * b[0], alpha * b[1], alpha * b[2]])
                .collect();
            max_residual = max_residual.max(force_rmsd(&f3, &proj));
        }
        let _ = train;
        assert!(
            max_residual > 1e-4,
            "three-body forces must not be parallel to pair forces: {max_residual}"
        );
    }
}
