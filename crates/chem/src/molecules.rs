//! Synthetic molecule library for the molecular-design application.
//!
//! Stands in for the MOSES-derived candidate set (§III-A: 1 115 321
//! molecules, screened for ionization potential). Each molecule id maps
//! deterministically to a feature vector (the stand-in for its bonding
//! connectivity / fingerprint) and to a ground-truth IP produced by a
//! smooth nonlinear function of those features — expensive to "compute"
//! (the simulation task sleeps ~60 s of virtual time) but learnable by a
//! surrogate, which is all active learning requires.
//!
//! The IP distribution is calibrated to mean ≈ 10, σ ≈ 2 so the paper's
//! "IP > 14" success threshold selects a ~2 % tail — rare enough that
//! random search does poorly and steering matters.

use hetflow_sim::rng::{fnv1a, splitmix64};
use hetflow_sim::SimRng;

/// Number of features per molecule.
pub const N_FEATURES: usize = 12;

/// A generated candidate library.
pub struct MoleculeLibrary {
    seed: u64,
    n: usize,
    /// Hidden weights of the ground-truth property function.
    w_lin: [f64; N_FEATURES],
    w_sin: [f64; N_FEATURES],
    w_quad: [f64; N_FEATURES],
}

impl MoleculeLibrary {
    /// Generates a library of `n` candidates.
    pub fn generate(n: usize, seed: u64) -> Self {
        assert!(n > 0, "library cannot be empty");
        let mut rng = SimRng::stream(seed, "molecule-library");
        // Each hidden direction is normalized to |w| = √N so that
        // w·x/√N has unit variance for any seed — this keeps the IP
        // distribution (and hence the >14 tail) calibrated seed to seed.
        let mut draw = || {
            let mut w = [0.0; N_FEATURES];
            for v in &mut w {
                *v = rng.standard_normal();
            }
            let norm = w.iter().map(|v| v * v).sum::<f64>().sqrt();
            let target = (N_FEATURES as f64).sqrt();
            for v in &mut w {
                *v *= target / norm;
            }
            w
        };
        MoleculeLibrary { seed, n, w_lin: draw(), w_sin: draw(), w_quad: draw() }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the library is empty (never: construction requires n>0).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Deterministic feature vector of molecule `id` (values in ~N(0,1)).
    pub fn features(&self, id: usize) -> [f64; N_FEATURES] {
        assert!(id < self.n, "molecule {id} out of range");
        let mut f = [0.0; N_FEATURES];
        let base = splitmix64(self.seed ^ fnv1a(b"molecule") ^ (id as u64));
        for (k, v) in f.iter_mut().enumerate() {
            // Two independent uniform draws -> one Box-Muller normal.
            let a = splitmix64(base.wrapping_add(2 * k as u64 + 1));
            let b = splitmix64(base.wrapping_add(2 * k as u64 + 2));
            let u1 = 1.0 - (a as f64 / u64::MAX as f64);
            let u2 = b as f64 / u64::MAX as f64;
            *v = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
        f
    }

    /// Ground-truth ionization potential of molecule `id` (eV).
    ///
    /// This is what the tight-binding simulation task "computes"; the
    /// surrogate never sees this function, only its sampled values.
    pub fn true_ip(&self, id: usize) -> f64 {
        let x = self.features(id);
        let norm = (N_FEATURES as f64).sqrt();
        let mut lin = 0.0;
        let mut sin_arg = 0.0;
        let mut quad = 0.0;
        for k in 0..N_FEATURES {
            lin += self.w_lin[k] * x[k];
            sin_arg += self.w_sin[k] * x[k];
            quad += self.w_quad[k] * x[k];
        }
        lin /= norm;
        sin_arg /= norm;
        quad /= norm;
        // Smooth, mildly nonlinear; lin/sin_arg/quad all have unit
        // variance by construction, so the combination below has mean 10
        // and sd ≈ 2 for every seed.
        10.0 + 2.0 * (0.85 * lin + 0.45 * (2.0 * sin_arg).sin() + 0.35 * (quad * quad - 1.0))
    }

    /// Convenience: ids of all molecules whose true IP exceeds `thresh`.
    pub fn ids_above(&self, thresh: f64) -> Vec<usize> {
        (0..self.n).filter(|&i| self.true_ip(i) > thresh).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_features() {
        let lib = MoleculeLibrary::generate(100, 7);
        let lib2 = MoleculeLibrary::generate(100, 7);
        for id in [0, 17, 99] {
            assert_eq!(lib.features(id), lib2.features(id));
            assert_eq!(lib.true_ip(id), lib2.true_ip(id));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MoleculeLibrary::generate(10, 1);
        let b = MoleculeLibrary::generate(10, 2);
        assert_ne!(a.true_ip(0), b.true_ip(0));
    }

    #[test]
    fn features_standardized() {
        let lib = MoleculeLibrary::generate(5000, 3);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let mut count = 0.0;
        for id in 0..1000 {
            for v in lib.features(id) {
                sum += v;
                sumsq += v * v;
                count += 1.0;
            }
        }
        let mean = sum / count;
        let var = sumsq / count - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn ip_distribution_calibrated() {
        let lib = MoleculeLibrary::generate(20_000, 42);
        let ips: Vec<f64> = (0..lib.len()).map(|i| lib.true_ip(i)).collect();
        let mean = ips.iter().sum::<f64>() / ips.len() as f64;
        let sd =
            (ips.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / ips.len() as f64).sqrt();
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
        assert!(sd > 1.0 && sd < 3.0, "sd {sd}");
        // The success threshold must select a small-but-nonempty tail.
        let frac = ips.iter().filter(|&&v| v > 14.0).count() as f64 / ips.len() as f64;
        assert!(
            frac > 0.002 && frac < 0.08,
            "IP>14 fraction {frac} out of calibrated range"
        );
    }

    #[test]
    fn tail_fraction_stable_across_seeds() {
        for seed in [1, 2, 3] {
            let lib = MoleculeLibrary::generate(10_000, seed);
            let frac = lib.ids_above(14.0).len() as f64 / lib.len() as f64;
            assert!(frac > 0.001 && frac < 0.1, "seed {seed}: frac {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let lib = MoleculeLibrary::generate(10, 1);
        let _ = lib.features(10);
    }

    #[test]
    fn ip_is_learnable_signal_not_noise() {
        // Nearby feature vectors should have correlated IPs: perturbing
        // one molecule's features slightly must change IP smoothly. We
        // check continuity of the hidden function via finite differences
        // on the linear part: molecules with similar features (found by
        // scanning) have closer IPs than random pairs on average.
        let lib = MoleculeLibrary::generate(3000, 5);
        let f0 = lib.features(0);
        // Distance in feature space vs |ΔIP| correlation (Spearman-ish):
        let mut pairs: Vec<(f64, f64)> = (1..lib.len())
            .map(|i| {
                let fi = lib.features(i);
                let d2: f64 = f0.iter().zip(fi.iter()).map(|(a, b)| (a - b).powi(2)).sum();
                (d2.sqrt(), (lib.true_ip(i) - lib.true_ip(0)).abs())
            })
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let near: f64 =
            pairs[..100].iter().map(|p| p.1).sum::<f64>() / 100.0;
        let far: f64 =
            pairs[pairs.len() - 100..].iter().map(|p| p.1).sum::<f64>() / 100.0;
        assert!(near < far, "IP must vary smoothly with features: near {near}, far {far}");
    }
}
