//! Deterministic random-number streams.
//!
//! Every stochastic draw in the simulator comes from a named stream derived
//! from the run's master seed, so two components never share a stream and a
//! run is bit-reproducible regardless of which subsystems are enabled.
//!
//! The generator is a self-contained xoshiro256++ (no external crates, no
//! platform entropy): given the same seed it yields the same sequence on
//! every build and host, which is the property the whole determinism
//! contract — and `hetlint` rule R2 — rests on. This module is the single
//! sanctioned source of randomness in the workspace.

/// Mixes a 64-bit value with the SplitMix64 finalizer.
///
/// Used to derive independent stream seeds from `(master_seed, name)`.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string; stable across platforms and builds.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic random stream.
///
/// An xoshiro256++ generator that remembers how it was derived, which
/// makes traces and failures easier to attribute.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates a stream directly from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        // Expand the seed through SplitMix64, the initialization the
        // xoshiro authors recommend; a zero state is impossible because
        // SplitMix64 is a bijection walked from four distinct inputs.
        let mut s = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(s);
        }
        SimRng { state, seed }
    }

    /// Derives the stream named `name` from `master` deterministically.
    ///
    /// Distinct names yield statistically independent streams; the same
    /// `(master, name)` pair always yields the same stream. `name` takes
    /// anything convertible to a [`Symbol`](crate::Symbol) — the seed is
    /// hashed from the *resolved bytes*, so a pre-interned symbol and the
    /// string it was interned from derive the identical stream.
    pub fn stream(master: u64, name: impl Into<crate::intern::Symbol>) -> Self {
        let name = name.into();
        let seed = splitmix64(master ^ fnv1a(name.as_str().as_bytes()));
        SimRng::from_seed(seed)
    }

    /// Derives a numbered child stream, e.g. one per worker or ensemble
    /// member.
    pub fn substream(&self, index: u64) -> Self {
        SimRng::from_seed(splitmix64(self.seed ^ splitmix64(index)))
    }

    /// The 64-bit seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit draw (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit draw (upper half of a 64-bit step).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 high bits — the full precision of an f64 mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        // Fixed-point multiply: maps the 64-bit draw into [0, n) with
        // bias below 2^-64·n — negligible at simulation scales and, unlike
        // rejection sampling, always exactly one draw per call, which keeps
        // stream consumption predictable.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Standard normal draw via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // Partial Fisher–Yates over an index vector: O(n) setup, fine at
        // the scales used here (dataset subsets, worker assignment).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = SimRng::stream(42, "alpha");
        let mut b = SimRng::stream(42, "alpha");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = SimRng::stream(42, "alpha");
        let mut b = SimRng::stream(42, "beta");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_masters_diverge() {
        let mut a = SimRng::stream(1, "alpha");
        let mut b = SimRng::stream(2, "alpha");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substreams_are_independent() {
        let root = SimRng::stream(7, "workers");
        let mut s0 = root.substream(0);
        let mut s1 = root.substream(1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        // Reproducible.
        let mut s0b = root.substream(0);
        let mut fresh = SimRng::stream(7, "workers").substream(0);
        fresh.next_u64();
        s0b.next_u64();
        assert_eq!(s0b.next_u64(), fresh.next_u64());
    }

    #[test]
    fn generator_matches_reference_vectors() {
        // xoshiro256++ reference: state seeded by SplitMix64 must
        // reproduce the same sequence forever — a build/platform drift
        // here would silently invalidate every recorded figure.
        let mut r = SimRng::from_seed(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SimRng::from_seed(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_eq!(first.len(), 4);
        // Distinct draws (a constant generator would also pass the
        // reproducibility check above).
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SimRng::from_seed(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "below(7) never produced some residue");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::from_seed(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = SimRng::from_seed(23);
        let mut b = SimRng::from_seed(23);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != 0));
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SimRng::from_seed(9);
        let s = r.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 30);
        assert!(t.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_population_panics() {
        let mut r = SimRng::from_seed(9);
        let _ = r.sample_indices(3, 4);
    }

    #[test]
    fn fnv_distinguishes_strings() {
        assert_ne!(fnv1a(b"simulation"), fnv1a(b"inference"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
