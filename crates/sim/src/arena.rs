//! Generation-checked slot arena for per-task payloads.
//!
//! The executor already slab-allocates its *tasks*; this module gives
//! the rest of the stack the same treatment for the objects that ride
//! along with tasks — store entries, waker slots, anything inserted and
//! removed once per task. An [`Arena`] recycles slots through a free
//! list, so steady-state insert/remove allocates nothing, and every
//! handle carries a generation so a stale [`ArenaId`] held across a
//! remove can never alias the slot's next tenant: it just misses.
//!
//! Handles pack to a `u64` ([`ArenaId::to_bits`]) so existing APIs that
//! exposed sequential `u64` keys (the store's object keys) can switch
//! to arena handles without changing their signatures.

use std::fmt;

/// Handle to a value in an [`Arena`]: slot index plus the generation
/// the slot had when the value was inserted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArenaId {
    index: u32,
    generation: u32,
}

impl ArenaId {
    /// Packs the handle into a `u64` (index in the low half).
    #[inline]
    pub fn to_bits(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }

    /// Rebuilds a handle from [`ArenaId::to_bits`] output. Any `u64`
    /// round-trips structurally; whether it *resolves* is up to the
    /// arena's generation check.
    #[inline]
    pub fn from_bits(bits: u64) -> ArenaId {
        ArenaId { index: bits as u32, generation: (bits >> 32) as u32 }
    }

    /// The slot index (diagnostic; dense from zero).
    #[inline]
    pub fn index(self) -> u32 {
        self.index
    }
}

impl fmt::Debug for ArenaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArenaId({}v{})", self.index, self.generation)
    }
}

struct Slot<T> {
    /// Bumped on every remove; odd/even does not matter, only equality.
    generation: u32,
    value: Option<T>,
}

/// A slot arena with generation-checked handles and free-list reuse.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena { slots: Vec::new(), free: Vec::new(), len: 0 }
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an arena with room for `cap` values before growing.
    pub fn with_capacity(cap: usize) -> Self {
        Arena { slots: Vec::with_capacity(cap), free: Vec::new(), len: 0 }
    }

    /// Live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value`, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> ArenaId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            return ArenaId { index, generation: slot.generation };
        }
        // hetlint: allow(r5) — 2^32 live slots exceeds any simulated campaign by orders of magnitude
        let index = u32::try_from(self.slots.len()).expect("arena capped at u32 slots");
        self.slots.push(Slot { generation: 0, value: Some(value) });
        ArenaId { index, generation: 0 }
    }

    /// The value behind `id`, unless `id` is stale or was never issued.
    #[inline]
    pub fn get(&self, id: ArenaId) -> Option<&T> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access behind `id`, with the same staleness check.
    #[inline]
    pub fn get_mut(&mut self, id: ArenaId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// True when `id` still resolves.
    pub fn contains(&self, id: ArenaId) -> bool {
        self.get(id).is_some()
    }

    /// Removes the value behind `id`; the slot's generation advances so
    /// the handle (and any copy of it) goes permanently stale.
    pub fn remove(&mut self, id: ArenaId) -> Option<T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.len -= 1;
        Some(value)
    }

    /// Live `(id, value)` pairs in slot-index order (insertion slots,
    /// not insertion time — deterministic for a deterministic caller).
    pub fn iter(&self) -> impl Iterator<Item = (ArenaId, &T)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            let v = s.value.as_ref()?;
            Some((ArenaId { index: i as u32, generation: s.generation }, v))
        })
    }

    /// Removes every value. Generations advance on occupied slots so
    /// all outstanding handles go stale.
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.value.take().is_some() {
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.len = 0;
    }
}

impl<T: fmt::Debug> fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(x), Some(&"x"));
        assert_eq!(a.get(y), Some(&"y"));
        assert_eq!(a.remove(x), Some("x"));
        assert_eq!(a.remove(x), None, "double remove misses");
        assert_eq!(a.len(), 1);
        assert!(!a.contains(x));
        assert!(a.contains(y));
    }

    #[test]
    fn stale_handle_never_aliases_reused_slot() {
        let mut a = Arena::new();
        let first = a.insert(1u32);
        a.remove(first);
        let second = a.insert(2u32);
        // Slot was reused...
        assert_eq!(second.index(), first.index());
        // ...but the old handle misses instead of reading the new tenant.
        assert_eq!(a.get(first), None);
        assert_eq!(a.get_mut(first), None);
        assert_eq!(a.remove(first), None);
        assert_eq!(a.get(second), Some(&2));
    }

    #[test]
    fn free_list_reuses_before_growing() {
        let mut a = Arena::new();
        let ids: Vec<ArenaId> = (0..4).map(|i| a.insert(i)).collect();
        for id in &ids {
            a.remove(*id);
        }
        assert!(a.is_empty());
        for i in 0..4 {
            let id = a.insert(i + 10);
            assert!(id.index() < 4, "reused a freed slot, got {id:?}");
        }
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn bits_roundtrip() {
        let mut a = Arena::new();
        a.insert(0u8);
        let id = a.insert(7u8);
        a.remove(id);
        let id2 = a.insert(8u8);
        let bits = id2.to_bits();
        assert_eq!(ArenaId::from_bits(bits), id2);
        assert_eq!(a.get(ArenaId::from_bits(bits)), Some(&8));
        // The stale handle's bits differ (generation advanced).
        assert_ne!(id.to_bits(), bits);
        assert_eq!(a.get(ArenaId::from_bits(id.to_bits())), None);
    }

    #[test]
    fn iter_walks_live_slots_in_index_order() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let _y = a.insert("y");
        let _z = a.insert("z");
        a.remove(x);
        let vals: Vec<&str> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, ["y", "z"]);
    }

    #[test]
    fn clear_stales_all_handles() {
        let mut a = Arena::new();
        let x = a.insert(1);
        let y = a.insert(2);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.get(x), None);
        assert_eq!(a.get(y), None);
        let z = a.insert(3);
        assert_eq!(a.get(z), Some(&3));
        assert_eq!(a.len(), 1);
    }
}
