//! Dense maps keyed by interned [`Symbol`]s.
//!
//! The fabric dispatch, health/reliability, steering-queue and store
//! paths all keep small per-topic or per-name tables that are looked up
//! once or more per task. A `BTreeMap<Symbol, _>` pays a string-compare
//! tree walk on every lookup even though a [`Symbol`] already carries a
//! dense `u32` id. [`SymbolMap`] spends that id directly: `get` is one
//! bounds check plus one index, `insert` amortizes to the same, and no
//! per-operation allocation happens after the slot table has grown to
//! cover the interner.
//!
//! Iteration order is part of the determinism contract: every map that
//! feeds the trace digest must iterate exactly like the
//! `BTreeMap<String, _>` it replaced. `SymbolMap` therefore keeps a
//! side list of keys sorted by *resolved string* (the same order
//! `Symbol`'s `Ord` provides) and iterates through it. Inserting a new
//! key is `O(n)` in the number of keys — these tables are built at
//! deploy time and mutated rarely, while lookups happen per task — and
//! lookups never touch the sorted list at all.

use crate::intern::Symbol;
use std::fmt;

/// A map from [`Symbol`] to `T` with O(1) id-indexed lookup and
/// deterministic resolved-string iteration order.
///
/// Semantically a drop-in replacement for `BTreeMap<Symbol, T>`: the
/// iteration order of [`SymbolMap::iter`], [`keys`](SymbolMap::keys)
/// and [`values`](SymbolMap::values) matches what the B-tree (ordered
/// by resolved string) would produce, so digest-visible code paths are
/// bit-identical after conversion.
#[derive(Clone)]
pub struct SymbolMap<T> {
    /// Value slots indexed by `Symbol::id()`. Holes are `None`.
    slots: Vec<Option<T>>,
    /// Keys present, sorted by resolved string (`Symbol`'s `Ord`).
    order: Vec<Symbol>,
}

impl<T> Default for SymbolMap<T> {
    fn default() -> Self {
        SymbolMap { slots: Vec::new(), order: Vec::new() }
    }
}

impl<T> SymbolMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// O(1): the value for `key`, if present.
    #[inline]
    pub fn get(&self, key: Symbol) -> Option<&T> {
        self.slots.get(key.id() as usize)?.as_ref()
    }

    /// O(1): mutable access to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: Symbol) -> Option<&mut T> {
        self.slots.get_mut(key.id() as usize)?.as_mut()
    }

    /// True when `key` has a value.
    #[inline]
    pub fn contains_key(&self, key: Symbol) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` for `key`, returning the previous value if any.
    ///
    /// First insertion of a key is O(n) (sorted-order bookkeeping);
    /// overwriting an existing key is O(1).
    pub fn insert(&mut self, key: Symbol, value: T) -> Option<T> {
        let idx = key.id() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let prev = self.slots[idx].replace(value);
        if prev.is_none() {
            // `Symbol::Ord` compares resolved strings, so a binary
            // search over `order` lands at the BTreeMap<String,_> spot.
            let at = self.order.binary_search(&key).unwrap_or_else(|e| e);
            self.order.insert(at, key);
        }
        prev
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: Symbol) -> Option<T> {
        let v = self.slots.get_mut(key.id() as usize)?.take()?;
        if let Ok(at) = self.order.binary_search(&key) {
            self.order.remove(at);
        }
        Some(v)
    }

    /// Returns the value for `key`, inserting `default()` first when
    /// absent.
    pub fn get_or_insert_with(&mut self, key: Symbol, default: impl FnOnce() -> T) -> &mut T {
        if !self.contains_key(key) {
            self.insert(key, default());
        }
        self.slots[key.id() as usize]
            .as_mut()
            // hetlint: allow(r5) — the branch above just inserted the slot
            .expect("slot populated just above")
    }

    /// Key/value pairs in resolved-string order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &T)> + '_ {
        self.order.iter().map(|&k| {
            let v = self.slots[k.id() as usize]
                .as_ref()
                // hetlint: allow(r5) — insert/remove keep order and slots in lockstep
                .expect("order list only holds populated keys");
            (k, v)
        })
    }

    /// Keys in resolved-string order.
    pub fn keys(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.order.iter().copied()
    }

    /// Values in resolved-string key order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// Applies `f` to every value, in resolved-string key order.
    ///
    /// Stands in for a `values_mut` iterator without handing out
    /// overlapping borrows (the map stays `unsafe`-free like the rest
    /// of the workspace).
    pub fn for_each_value_mut(&mut self, mut f: impl FnMut(Symbol, &mut T)) {
        for at in 0..self.order.len() {
            let k = self.order[at];
            let v = self.slots[k.id() as usize]
                .as_mut()
                // hetlint: allow(r5) — insert/remove keep order and slots in lockstep
                .expect("order list only holds populated keys");
            f(k, v);
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.order.clear();
    }
}

impl<T: fmt::Debug> fmt::Debug for SymbolMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for SymbolMap<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|((ka, va), (kb, vb))| ka == kb && va == vb)
    }
}

impl<T> FromIterator<(Symbol, T)> for SymbolMap<T> {
    fn from_iter<I: IntoIterator<Item = (Symbol, T)>>(iter: I) -> Self {
        let mut m = SymbolMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove() {
        let a = Symbol::intern("symmap-a");
        let b = Symbol::intern("symmap-b");
        let mut m = SymbolMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(a, 1), None);
        assert_eq!(m.insert(b, 2), None);
        assert_eq!(m.insert(a, 3), Some(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a), Some(&3));
        assert_eq!(m.get_mut(b).map(|v| std::mem::replace(v, 9)), Some(2));
        assert_eq!(m.remove(b), Some(9));
        assert_eq!(m.remove(b), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(a));
        assert!(!m.contains_key(b));
    }

    #[test]
    fn get_or_insert_with() {
        let k = Symbol::intern("symmap-goi");
        let mut m: SymbolMap<Vec<u32>> = SymbolMap::new();
        m.get_or_insert_with(k, Vec::new).push(1);
        m.get_or_insert_with(k, || panic!("must not rebuild")).push(2);
        assert_eq!(m.get(k), Some(&vec![1, 2]));
    }

    #[test]
    fn iterates_in_resolved_string_order() {
        // Intern in an order unrelated to string order so the test
        // would catch id-order iteration.
        let names = ["symmap-zed", "symmap-alpha", "symmap-mid", "symmap-beta"];
        let mut m = SymbolMap::new();
        let mut reference: BTreeMap<String, usize> = BTreeMap::new();
        for (i, n) in names.iter().enumerate() {
            m.insert(Symbol::intern(n), i);
            reference.insert((*n).to_string(), i);
        }
        let got: Vec<(String, usize)> =
            m.iter().map(|(k, &v)| (k.as_str().to_string(), v)).collect();
        let want: Vec<(String, usize)> =
            reference.iter().map(|(k, &v)| (k.clone(), v)).collect();
        assert_eq!(got, want);
        let keys: Vec<&str> = m.keys().map(|k| k.as_str()).collect();
        assert_eq!(keys, ["symmap-alpha", "symmap-beta", "symmap-mid", "symmap-zed"]);
        let vals: Vec<usize> = m.values().copied().collect();
        assert_eq!(vals, [1, 3, 2, 0]);
    }

    #[test]
    fn for_each_value_mut_visits_in_order_once_each() {
        let names = ["symmap-m3", "symmap-m1", "symmap-m2"];
        let mut m = SymbolMap::new();
        for n in names {
            m.insert(Symbol::intern(n), 0u32);
        }
        let mut i = 0u32;
        m.for_each_value_mut(|_, v| {
            *v = i + 10;
            i += 1;
        });
        let got: Vec<(&str, u32)> = m.iter().map(|(k, &v)| (k.as_str(), v)).collect();
        assert_eq!(got, [("symmap-m1", 10), ("symmap-m2", 11), ("symmap-m3", 12)]);
    }

    #[test]
    fn from_iterator_and_eq() {
        let a = Symbol::intern("symmap-fi-a");
        let b = Symbol::intern("symmap-fi-b");
        let m: SymbolMap<u32> = [(b, 2), (a, 1)].into_iter().collect();
        let n: SymbolMap<u32> = [(a, 1), (b, 2)].into_iter().collect();
        assert_eq!(m, n);
        assert_eq!(format!("{m:?}"), "{\"symmap-fi-a\": 1, \"symmap-fi-b\": 2}");
    }

    #[test]
    fn clear_resets() {
        let k = Symbol::intern("symmap-clear");
        let mut m = SymbolMap::new();
        m.insert(k, 5);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(k), None);
    }
}
