//! # hetflow-sim — deterministic discrete-event simulation kernel
//!
//! The substrate on which the whole reproduction runs. The paper's
//! evaluation was performed on a physical testbed (Theta KNL nodes, a
//! 20-GPU server, cloud-hosted FuncX and Globus services); this crate
//! provides the virtual-time machinery that stands in for that hardware:
//!
//! * [`Sim`] — a single-threaded async executor over virtual time.
//!   Actors are ordinary `async` tasks; awaiting [`Sim::sleep`] advances
//!   the clock deterministically.
//! * [`channel`]/[`bounded`]/[`oneshot`] — FIFO message channels between
//!   actors (task queues, result queues, request/reply).
//! * [`Event`] and [`Semaphore`] — the coordination primitives the
//!   steering agents and resource models are built from.
//! * [`SimRng`] and [`Dist`] — named deterministic random streams and the
//!   latency distributions used by all cost models.
//! * [`Samples`], [`TimeSeries`], [`Gauge`], [`Tracer`] — measurement
//!   containers for regenerating the paper's figures.
//!
//! Determinism: runs are bit-reproducible for a given master seed. Tasks
//! wake in FIFO order, timers fire in `(deadline, registration)` order,
//! and all randomness flows through named [`SimRng`] streams.
//!
//! ```
//! use hetflow_sim::{Sim, channel, time::secs};
//!
//! let sim = Sim::new();
//! let (tx, rx) = channel::<u32>();
//! let s = sim.clone();
//! sim.spawn(async move {
//!     s.sleep(secs(1.0)).await;
//!     tx.send_now(42).unwrap();
//! });
//! let h = sim.spawn(async move { rx.recv().await });
//! assert_eq!(sim.block_on(h), Some(42));
//! assert_eq!(sim.now().as_secs_f64(), 1.0);
//! ```

pub mod arena;
pub mod channel;
pub mod combinators;
pub mod dist;
pub mod executor;
pub mod intern;
pub mod metrics;
pub mod rng;
pub mod symmap;
pub mod sync;
pub mod time;
pub mod trace;

pub use arena::{Arena, ArenaId};
pub use combinators::{join_all, select2, Barrier, Either, Elapsed, Interval};
pub use channel::{
    bounded, channel, oneshot, Offered, OneshotReceiver, OneshotSender, OverflowPolicy, Receiver,
    Sender, TrySendError,
};
pub use dist::Dist;
pub use executor::{JoinHandle, RunReport, Sim};
pub use intern::Symbol;
pub use symmap::SymbolMap;
pub use metrics::{Gauge, Samples, TimeSeries};
pub use rng::SimRng;
pub use sync::{Event, Permit, Semaphore};
pub use time::SimTime;
pub use trace::{kinds as trace_kinds, TraceEvent, Tracer};
