//! Message channels between simulated actors.
//!
//! [`channel`] gives an unbounded multi-producer/multi-consumer FIFO — the
//! workhorse for task queues, result queues, and worker pools.
//! [`bounded`] adds backpressure for links with limited in-flight capacity.
//! [`oneshot`] carries a single reply, used for request/response exchanges
//! such as a worker returning a task result.
//!
//! Channels transport values instantaneously in virtual time; latency is
//! modelled explicitly by the sender (sleep, then send), which keeps cost
//! models visible at the call site rather than hidden in plumbing.
//!
//! Caveat: each send wakes exactly one waiting receiver. Dropping a
//! `recv()` future after it has been polled (racing it in `select2` /
//! `timeout`) can therefore consume a wakeup meant for another waiting
//! receiver and strand a queued item until the next poll. Consume
//! channels from plain `recv().await` loops; race on [`crate::Event`]s
//! or oneshots instead.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by bounded sends that would block forever.
#[derive(Debug, PartialEq, Eq)]
pub struct ClosedError;

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_wakers: VecDeque<Waker>,
    send_wakers: VecDeque<Waker>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
    total_sent: u64,
}

impl<T> ChanState<T> {
    fn wake_one_receiver(&mut self) {
        if let Some(w) = self.recv_wakers.pop_front() {
            w.wake();
        }
    }
    fn wake_all_receivers(&mut self) {
        for w in self.recv_wakers.drain(..) {
            w.wake();
        }
    }
    fn wake_one_sender(&mut self) {
        if let Some(w) = self.send_wakers.pop_front() {
            w.wake();
        }
    }
}

/// Sending half of a channel. Clonable.
pub struct Sender<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Receiving half of a channel. Clonable; multiple receivers compete for
/// items (work-sharing), each item is delivered exactly once.
pub struct Receiver<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Creates an unbounded MPMC FIFO channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPMC FIFO channel; senders block (in virtual time)
/// while `capacity` items are queued.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel needs capacity >= 1");
    with_capacity(Some(capacity))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        recv_wakers: VecDeque::new(),
        send_wakers: VecDeque::new(),
        capacity,
        senders: 1,
        receivers: 1,
        total_sent: 0,
    }));
    (Sender { state: Rc::clone(&state) }, Receiver { state })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender { state: Rc::clone(&self.state) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            s.wake_all_receivers();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().receivers += 1;
        Receiver { state: Rc::clone(&self.state) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.receivers -= 1;
        if s.receivers == 0 {
            // Senders blocked on capacity must observe closure.
            for w in s.send_wakers.drain(..) {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Sends without blocking. On an unbounded channel this always
    /// succeeds while a receiver exists; on a bounded channel it also
    /// succeeds (use [`Sender::send`] to respect capacity).
    pub fn send_now(&self, value: T) -> Result<(), SendError<T>> {
        let mut s = self.state.borrow_mut();
        if s.receivers == 0 {
            return Err(SendError(value));
        }
        s.queue.push_back(value);
        s.total_sent += 1;
        s.wake_one_receiver();
        Ok(())
    }

    /// Sends, awaiting capacity on bounded channels.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture { sender: self, value: Some(value) }
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when no receiver remains.
    pub fn is_closed(&self) -> bool {
        self.state.borrow().receivers == 0
    }

    /// Total items ever sent on this channel.
    pub fn total_sent(&self) -> u64 {
        self.state.borrow().total_sent
    }
}

/// Future returned by [`Sender::send`].
pub struct SendFuture<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
}

// No self-referential fields; safe to move after polling.
impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), ClosedError>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.sender.state.borrow_mut();
        if s.receivers == 0 {
            return Poll::Ready(Err(ClosedError));
        }
        let at_capacity = s.capacity.is_some_and(|c| s.queue.len() >= c);
        if at_capacity {
            s.send_wakers.push_back(cx.waker().clone());
            return Poll::Pending;
        }
        drop(s);
        // hetlint: allow(r5) — poll-after-Ready violates the Future contract; the value
        // was moved out when the send completed, so there is nothing sane to return.
        let value = self.value.take().expect("SendFuture polled after completion");
        // Receiver count was checked above; send_now cannot fail here.
        self.sender.send_now(value).map_err(|_| ClosedError)?;
        Poll::Ready(Ok(()))
    }
}

impl<T> Receiver<T> {
    /// Awaits the next item; resolves to `None` once the channel is empty
    /// and all senders are gone.
    pub fn recv(&self) -> RecvFuture<'_, T> {
        RecvFuture { receiver: self }
    }

    /// Takes an item if one is queued.
    pub fn try_recv(&self) -> Option<T> {
        let mut s = self.state.borrow_mut();
        let v = s.queue.pop_front();
        if v.is_some() {
            s.wake_one_sender();
        }
        v
    }

    /// Drains everything currently queued.
    pub fn drain_now(&self) -> Vec<T> {
        let mut s = self.state.borrow_mut();
        let items: Vec<T> = s.queue.drain(..).collect();
        for _ in 0..items.len() {
            s.wake_one_sender();
        }
        items
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct RecvFuture<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.receiver.state.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            s.wake_one_sender();
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        s.recv_wakers.push_back(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

struct OneshotState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Sending half of a oneshot channel.
pub struct OneshotSender<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// Receiving half of a oneshot channel; a future resolving to
/// `Ok(value)` or `Err(Dropped)` if the sender vanished.
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// The oneshot sender was dropped without sending.
#[derive(Debug, PartialEq, Eq)]
pub struct Dropped;

/// Creates a single-value channel.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Rc::new(RefCell::new(OneshotState {
        value: None,
        waker: None,
        sender_alive: true,
    }));
    (OneshotSender { state: Rc::clone(&state) }, OneshotReceiver { state })
}

impl<T> OneshotSender<T> {
    /// Delivers the value, waking the receiver.
    pub fn send(self, value: T) {
        let mut s = self.state.borrow_mut();
        s.value = Some(value);
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.sender_alive = false;
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, Dropped>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !s.sender_alive {
            return Poll::Ready(Err(Dropped));
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::secs;
    use crate::SimTime;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn send_then_recv() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        tx.send_now(5).unwrap();
        let h = sim.spawn(async move { rx.recv().await });
        assert_eq!(sim.block_on(h), Some(5));
    }

    #[test]
    fn recv_blocks_until_send() {
        let sim = Sim::new();
        let (tx, rx) = channel::<&str>();
        let s = sim.clone();
        let recv_task = sim.spawn(async move {
            let v = rx.recv().await;
            (v, s.now())
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(3.0)).await;
            tx.send_now("hello").unwrap();
        });
        let (v, t) = sim.block_on(recv_task);
        assert_eq!(v, Some("hello"));
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn fifo_order_preserved() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        for i in 0..10 {
            tx.send_now(i).unwrap();
        }
        let h = sim.spawn(async move {
            let mut out = vec![];
            for _ in 0..10 {
                out.push(rx.recv().await.unwrap());
            }
            out
        });
        assert_eq!(sim.block_on(h), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn closed_channel_yields_none_after_drain() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        tx.send_now(1).unwrap();
        drop(tx);
        let h = sim.spawn(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        assert_eq!(sim.block_on(h), (Some(1), None));
    }

    #[test]
    fn send_to_closed_fails() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send_now(9), Err(SendError(9)));
        assert!(tx.is_closed());
    }

    #[test]
    fn multiple_consumers_share_work() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let got: Rc<StdRefCell<Vec<(usize, u32)>>> = Rc::default();
        for worker in 0..3usize {
            let rx = rx.clone();
            let got = Rc::clone(&got);
            let s = sim.clone();
            sim.spawn(async move {
                while let Some(item) = rx.recv().await {
                    s.sleep(secs(1.0)).await; // busy for 1s each item
                    got.borrow_mut().push((worker, item));
                }
            });
        }
        drop(rx);
        for i in 0..6 {
            tx.send_now(i).unwrap();
        }
        drop(tx);
        let r = sim.run();
        // 6 items, 3 workers, 1s each => 2s total.
        assert_eq!(r.end, SimTime::from_secs(2));
        let got = got.borrow();
        assert_eq!(got.len(), 6);
        let mut items: Vec<u32> = got.iter().map(|&(_, i)| i).collect();
        items.sort_unstable();
        assert_eq!(items, (0..6).collect::<Vec<_>>());
        // All three workers participated.
        let mut workers: Vec<usize> = got.iter().map(|&(w, _)| w).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers, vec![0, 1, 2]);
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let sim = Sim::new();
        let (tx, rx) = bounded::<u32>(2);
        let s = sim.clone();
        let producer = sim.spawn(async move {
            for i in 0..4 {
                tx.send(i).await.unwrap();
            }
            s.now()
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            loop {
                s2.sleep(secs(1.0)).await;
                if rx.recv().await.is_none() {
                    break;
                }
            }
        });
        // Producer can enqueue 2 immediately, then waits for the consumer
        // to drain one per second: items 3 and 4 enter at t=1 and t=2.
        let t = sim.block_on(producer);
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn bounded_send_fails_when_receiver_drops() {
        let sim = Sim::new();
        let (tx, rx) = bounded::<u32>(1);
        tx.send_now(0).unwrap(); // fill
        let producer = sim.spawn(async move { tx.send(1).await });
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            drop(rx);
        });
        assert_eq!(sim.block_on(producer), Err(ClosedError));
    }

    #[test]
    fn try_recv_and_drain() {
        let (tx, rx) = channel::<u32>();
        assert_eq!(rx.try_recv(), None);
        tx.send_now(1).unwrap();
        tx.send_now(2).unwrap();
        tx.send_now(3).unwrap();
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.drain_now(), vec![2, 3]);
        assert!(rx.is_empty());
        assert_eq!(tx.total_sent(), 3);
    }

    #[test]
    fn oneshot_roundtrip() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u64>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(5.0)).await;
            tx.send(99);
        });
        let h = sim.spawn(rx);
        assert_eq!(sim.block_on(h), Ok(99));
    }

    #[test]
    fn oneshot_dropped_sender() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u64>();
        sim.spawn(async move {
            drop(tx);
        });
        let h = sim.spawn(rx);
        assert_eq!(sim.block_on(h), Err(Dropped));
    }

    #[test]
    fn oneshot_send_before_recv() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<&str>();
        tx.send("early");
        let h = sim.spawn(rx);
        assert_eq!(sim.block_on(h), Ok("early"));
    }
}
