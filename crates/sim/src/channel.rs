//! Message channels between simulated actors.
//!
//! [`channel`] gives a multi-producer/multi-consumer FIFO — the workhorse
//! for task queues, result queues, and worker pools. It is unbounded by
//! construction, but callers choose the capacity contract per send:
//! [`Sender::send`] awaits room on a [`bounded`] channel, [`Sender::try_send`]
//! refuses instead of waiting, and [`Sender::offer`] enforces a caller-side
//! capacity with a deterministic [`OverflowPolicy`] (reject the arrival, shed
//! the oldest queued item, or shed the lowest-priority one) — the primitive
//! behind the fabric's overload protection. [`oneshot`] carries a single
//! reply, used for request/response exchanges such as a worker returning a
//! task result.
//!
//! Channels transport values instantaneously in virtual time; latency is
//! modelled explicitly by the sender (sleep, then send), which keeps cost
//! models visible at the call site rather than hidden in plumbing.
//!
//! Waiting is allocation-free on the steady state: each pending
//! `recv()`/`send()` future owns one reusable slot in a [`WakerPool`]
//! rather than pushing a cloned [`Waker`] into a queue on every poll.
//! Re-polls refresh the slot in place (`will_wake` skips the clone), a
//! released slot keeps its waker so the next future of the same task
//! re-registers clone-free, and FIFO wake order is preserved by a queue
//! of generation-checked slot handles.
//!
//! Dropping a `recv()` future mid-wait (racing it in `select2` /
//! `timeout`) is safe: an un-notified waiter leaves a stale handle that
//! wake-one skips, and a waiter dropped *after* it consumed a wakeup
//! passes that wakeup to the next waiter, so a queued item is never
//! stranded. (Earlier revisions documented this as a caveat; it is now
//! a tested guarantee.)

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by bounded sends that would block forever.
#[derive(Debug, PartialEq, Eq)]
pub struct ClosedError;

/// Error returned by [`Sender::try_send`]: the value is handed back so the
/// caller can account for it (shed counters, retry queues).
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the arrival was refused.
    Full(T),
    /// Every receiver is gone.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// Recovers the value that was not sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Closed(v) => v,
        }
    }
}

/// What to do when an [`Sender::offer`] arrives at a full queue. All three
/// policies are deterministic functions of queue contents — no RNG — so
/// same-seed runs shed the same tasks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Refuse the arrival; the queue is untouched.
    #[default]
    Reject,
    /// Evict the longest-queued item to make room for the arrival.
    ShedOldest,
    /// Evict the lowest-priority item (oldest among ties). When the
    /// arrival itself has the strictly lowest priority, it is the one
    /// refused.
    ShedLowestPriority,
}

/// Outcome of [`Sender::offer`]: either the value was queued with room to
/// spare, or the policy displaced a victim (possibly the arrival itself),
/// or the channel is closed.
#[derive(Debug, PartialEq, Eq)]
pub enum Offered<T> {
    /// The arrival was queued without evicting anything.
    Accepted,
    /// The queue was full: the policy picked this victim (which may be
    /// the arrival itself under `Reject` / `ShedLowestPriority`). The
    /// caller owns its accounting — synthesize a shed outcome, trace it.
    Displaced(T),
    /// Every receiver is gone; the arrival is handed back.
    Closed(T),
}

/// Handle to a [`WakerPool`] slot: index plus the generation at
/// registration, so a released slot's next tenant is never confused
/// with the old one.
type SlotHandle = (u32, u32);

struct WakerSlot {
    /// The registered waker. Kept across release so a task that waits
    /// on the same channel repeatedly (every worker loop) re-registers
    /// without cloning: `will_wake` recognizes it.
    waker: Option<Waker>,
    generation: u32,
    /// A wake was delivered to this slot's future and not yet consumed
    /// by a poll.
    notified: bool,
}

/// Pool of reusable waker slots with FIFO wake order.
///
/// One slot per *pending future*, registered on first poll and held
/// until the future completes or drops — not one cloned `Waker` per
/// poll. The wait queue holds generation-checked handles; stale entries
/// (futures that released their slot while queued) are skipped at wake
/// time, which costs nothing on the happy path and makes dropping a
/// waiting future safe.
#[derive(Default)]
struct WakerPool {
    slots: Vec<WakerSlot>,
    free: Vec<u32>,
    /// FIFO of waiting registrants.
    queue: VecDeque<SlotHandle>,
}

impl WakerPool {
    /// Registers `waker` under `handle` (refreshing in place) or a
    /// fresh slot, enqueueing the future if it is not already waiting.
    fn register(&mut self, handle: Option<SlotHandle>, waker: &Waker) -> SlotHandle {
        if let Some((idx, generation)) = handle {
            let slot = &mut self.slots[idx as usize];
            if slot.generation == generation {
                match &mut slot.waker {
                    Some(w) if w.will_wake(waker) => {}
                    w => *w = Some(waker.clone()),
                }
                if slot.notified {
                    // The wakeup was consumed by this re-poll and the
                    // future found nothing; rejoin the back of the line.
                    slot.notified = false;
                    self.queue.push_back((idx, generation));
                }
                return (idx, generation);
            }
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(WakerSlot { waker: None, generation: 0, notified: false });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[idx as usize];
        slot.notified = false;
        match &mut slot.waker {
            Some(w) if w.will_wake(waker) => {}
            w => *w = Some(waker.clone()),
        }
        let handle = (idx, slot.generation);
        self.queue.push_back(handle);
        handle
    }

    /// Wakes the longest-waiting live registrant, skipping released
    /// slots. Returns false when no one is waiting.
    fn wake_one(&mut self) -> bool {
        while let Some((idx, generation)) = self.queue.pop_front() {
            let slot = &mut self.slots[idx as usize];
            if slot.generation != generation {
                continue;
            }
            slot.notified = true;
            if let Some(w) = &slot.waker {
                w.wake_by_ref();
            }
            return true;
        }
        false
    }

    /// Wakes every waiting registrant.
    fn wake_all(&mut self) {
        while self.wake_one() {}
    }

    /// Releases `handle` (future completed or dropped). Returns true
    /// when the slot held an unconsumed notification — the caller
    /// decides whether to pass that wakeup to the next waiter.
    fn release(&mut self, handle: SlotHandle) -> bool {
        let (idx, generation) = handle;
        let slot = &mut self.slots[idx as usize];
        if slot.generation != generation {
            return false;
        }
        slot.generation = slot.generation.wrapping_add(1);
        let notified = slot.notified;
        slot.notified = false;
        self.free.push(idx);
        notified
    }
}

struct ChanState<T> {
    queue: VecDeque<T>,
    recv_wakers: WakerPool,
    send_wakers: WakerPool,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
    total_sent: u64,
}

/// Sending half of a channel. Clonable.
pub struct Sender<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Receiving half of a channel. Clonable; multiple receivers compete for
/// items (work-sharing), each item is delivered exactly once.
pub struct Receiver<T> {
    state: Rc<RefCell<ChanState<T>>>,
}

/// Creates an MPMC FIFO channel with no built-in capacity: every
/// [`Sender::send_now`] succeeds while a receiver exists. Callers that
/// need bounded behavior use [`bounded`] (senders await room) or keep the
/// channel unbounded and police depth at the send site with
/// [`Sender::offer`] / [`Sender::try_send`].
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPMC FIFO channel; senders block (in virtual time)
/// while `capacity` items are queued.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "bounded channel needs capacity >= 1");
    with_capacity(Some(capacity))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(RefCell::new(ChanState {
        queue: VecDeque::new(),
        recv_wakers: WakerPool::default(),
        send_wakers: WakerPool::default(),
        capacity,
        senders: 1,
        receivers: 1,
        total_sent: 0,
    }));
    (Sender { state: Rc::clone(&state) }, Receiver { state })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().senders += 1;
        Sender { state: Rc::clone(&self.state) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            s.recv_wakers.wake_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().receivers += 1;
        Receiver { state: Rc::clone(&self.state) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.receivers -= 1;
        if s.receivers == 0 {
            // Senders blocked on capacity must observe closure.
            s.send_wakers.wake_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends without blocking and without respecting capacity: it
    /// succeeds whenever a receiver exists, even past a [`bounded`]
    /// channel's limit. Use [`Sender::send`] to await room,
    /// [`Sender::try_send`] to refuse instead of overflowing, or
    /// [`Sender::offer`] for policy-driven shedding.
    pub fn send_now(&self, value: T) -> Result<(), SendError<T>> {
        let mut s = self.state.borrow_mut();
        if s.receivers == 0 {
            return Err(SendError(value));
        }
        s.queue.push_back(value);
        s.total_sent += 1;
        s.recv_wakers.wake_one();
        Ok(())
    }

    /// Sends, awaiting capacity on bounded channels.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture { sender: self, value: Some(value), slot: None }
    }

    /// Sends only if the channel has room: on a [`bounded`] channel at
    /// capacity the arrival is refused with [`TrySendError::Full`]
    /// instead of queueing (contrast [`Sender::send_now`], which always
    /// overflows). On an unbounded channel this is `send_now` with the
    /// error repackaged.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut s = self.state.borrow_mut();
        if s.receivers == 0 {
            return Err(TrySendError::Closed(value));
        }
        if s.capacity.is_some_and(|c| s.queue.len() >= c) {
            return Err(TrySendError::Full(value));
        }
        s.queue.push_back(value);
        s.total_sent += 1;
        s.recv_wakers.wake_one();
        Ok(())
    }

    /// Offers `value` against a caller-side `capacity` (0 = unbounded),
    /// applying `policy` when the queue is full. `priority` maps an item
    /// to its importance (higher keeps its place) and is consulted only
    /// by [`OverflowPolicy::ShedLowestPriority`].
    ///
    /// A full queue implies no receiver is currently waiting (a waiting
    /// receiver would have drained it), so displacing one queued item
    /// for another needs no wakeup; an accepted arrival wakes a receiver
    /// exactly like `send_now`.
    pub fn offer(
        &self,
        value: T,
        capacity: usize,
        policy: OverflowPolicy,
        priority: impl Fn(&T) -> u64,
    ) -> Offered<T> {
        let mut s = self.state.borrow_mut();
        if s.receivers == 0 {
            return Offered::Closed(value);
        }
        if capacity == 0 || s.queue.len() < capacity {
            s.queue.push_back(value);
            s.total_sent += 1;
            s.recv_wakers.wake_one();
            return Offered::Accepted;
        }
        match policy {
            OverflowPolicy::Reject => Offered::Displaced(value),
            OverflowPolicy::ShedOldest => match s.queue.pop_front() {
                Some(victim) => {
                    s.queue.push_back(value);
                    s.total_sent += 1;
                    Offered::Displaced(victim)
                }
                // Unreachable (a full queue is non-empty), but landing
                // the value keeps the no-panic dispatch contract.
                None => {
                    s.queue.push_back(value);
                    s.total_sent += 1;
                    s.recv_wakers.wake_one();
                    Offered::Accepted
                }
            },
            OverflowPolicy::ShedLowestPriority => {
                let mut min: Option<(usize, u64)> = None;
                for (i, item) in s.queue.iter().enumerate() {
                    let p = priority(item);
                    if min.is_none_or(|(_, lowest)| p < lowest) {
                        min = Some((i, p));
                    }
                }
                let Some((idx, lowest)) = min else {
                    s.queue.push_back(value);
                    s.total_sent += 1;
                    s.recv_wakers.wake_one();
                    return Offered::Accepted;
                };
                if priority(&value) < lowest {
                    return Offered::Displaced(value);
                }
                match s.queue.remove(idx) {
                    Some(victim) => {
                        s.queue.push_back(value);
                        s.total_sent += 1;
                        Offered::Displaced(victim)
                    }
                    None => {
                        s.queue.push_back(value);
                        s.total_sent += 1;
                        s.recv_wakers.wake_one();
                        Offered::Accepted
                    }
                }
            }
        }
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when no receiver remains.
    pub fn is_closed(&self) -> bool {
        self.state.borrow().receivers == 0
    }

    /// Total items ever sent on this channel.
    pub fn total_sent(&self) -> u64 {
        self.state.borrow().total_sent
    }
}

/// Future returned by [`Sender::send`].
pub struct SendFuture<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
    slot: Option<SlotHandle>,
}

// No self-referential fields; safe to move after polling.
impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), ClosedError>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.sender.state.borrow_mut();
        if s.receivers == 0 {
            if let Some(h) = self.slot.take() {
                s.send_wakers.release(h);
            }
            return Poll::Ready(Err(ClosedError));
        }
        let at_capacity = s.capacity.is_some_and(|c| s.queue.len() >= c);
        if at_capacity {
            self.slot = Some(s.send_wakers.register(self.slot, cx.waker()));
            return Poll::Pending;
        }
        if let Some(h) = self.slot.take() {
            s.send_wakers.release(h);
        }
        drop(s);
        // hetlint: allow(r5) — poll-after-Ready violates the Future contract; the value
        // was moved out when the send completed, so there is nothing sane to return.
        let value = self.value.take().expect("SendFuture polled after completion");
        // Receiver count was checked above; send_now cannot fail here.
        self.sender.send_now(value).map_err(|_| ClosedError)?;
        Poll::Ready(Ok(()))
    }
}

impl<T> Drop for SendFuture<'_, T> {
    fn drop(&mut self) {
        if let Some(h) = self.slot.take() {
            let mut s = self.sender.state.borrow_mut();
            let notified = s.send_wakers.release(h);
            // A consumed-but-unused capacity wakeup belongs to the next
            // blocked sender.
            let has_room = s.capacity.is_none_or(|c| s.queue.len() < c);
            if notified && (has_room || s.receivers == 0) {
                s.send_wakers.wake_one();
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Awaits the next item; resolves to `None` once the channel is empty
    /// and all senders are gone.
    pub fn recv(&self) -> RecvFuture<'_, T> {
        RecvFuture { receiver: self, slot: None }
    }

    /// Takes an item if one is queued.
    pub fn try_recv(&self) -> Option<T> {
        let mut s = self.state.borrow_mut();
        let v = s.queue.pop_front();
        if v.is_some() {
            s.send_wakers.wake_one();
        }
        v
    }

    /// Drains everything currently queued.
    pub fn drain_now(&self) -> Vec<T> {
        let mut s = self.state.borrow_mut();
        let items: Vec<T> = s.queue.drain(..).collect();
        for _ in 0..items.len() {
            s.send_wakers.wake_one();
        }
        items
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct RecvFuture<'a, T> {
    receiver: &'a Receiver<T>,
    slot: Option<SlotHandle>,
}

// Only a reference and a slot handle; safe to move after polling.
impl<T> Unpin for RecvFuture<'_, T> {}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Option<T>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.receiver.state.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            if let Some(h) = self.slot.take() {
                s.recv_wakers.release(h);
            }
            s.send_wakers.wake_one();
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            if let Some(h) = self.slot.take() {
                s.recv_wakers.release(h);
            }
            return Poll::Ready(None);
        }
        self.slot = Some(s.recv_wakers.register(self.slot, cx.waker()));
        Poll::Pending
    }
}

impl<T> Drop for RecvFuture<'_, T> {
    fn drop(&mut self) {
        if let Some(h) = self.slot.take() {
            let mut s = self.receiver.state.borrow_mut();
            let notified = s.recv_wakers.release(h);
            // This future consumed a wakeup it will never act on; hand
            // it to the next waiter so the item it announced (or the
            // closure signal) is not stranded.
            if notified && (!s.queue.is_empty() || s.senders == 0) {
                s.recv_wakers.wake_one();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

struct OneshotState<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
}

/// Sending half of a oneshot channel.
pub struct OneshotSender<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// Receiving half of a oneshot channel; a future resolving to
/// `Ok(value)` or `Err(Dropped)` if the sender vanished.
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<OneshotState<T>>>,
}

/// The oneshot sender was dropped without sending.
#[derive(Debug, PartialEq, Eq)]
pub struct Dropped;

/// Creates a single-value channel.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Rc::new(RefCell::new(OneshotState {
        value: None,
        waker: None,
        sender_alive: true,
    }));
    (OneshotSender { state: Rc::clone(&state) }, OneshotReceiver { state })
}

impl<T> OneshotSender<T> {
    /// Delivers the value, waking the receiver.
    pub fn send(self, value: T) {
        let mut s = self.state.borrow_mut();
        s.value = Some(value);
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut s = self.state.borrow_mut();
        s.sender_alive = false;
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Result<T, Dropped>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !s.sender_alive {
            return Poll::Ready(Err(Dropped));
        }
        match &mut s.waker {
            Some(w) if w.will_wake(cx.waker()) => {}
            w => *w = Some(cx.waker().clone()),
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::{select2, Either};
    use crate::executor::Sim;
    use crate::sync::Event;
    use crate::time::secs;
    use crate::SimTime;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn send_then_recv() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        tx.send_now(5).unwrap();
        let h = sim.spawn(async move { rx.recv().await });
        assert_eq!(sim.block_on(h), Some(5));
    }

    #[test]
    fn recv_blocks_until_send() {
        let sim = Sim::new();
        let (tx, rx) = channel::<&str>();
        let s = sim.clone();
        let recv_task = sim.spawn(async move {
            let v = rx.recv().await;
            (v, s.now())
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(3.0)).await;
            tx.send_now("hello").unwrap();
        });
        let (v, t) = sim.block_on(recv_task);
        assert_eq!(v, Some("hello"));
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn fifo_order_preserved() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        for i in 0..10 {
            tx.send_now(i).unwrap();
        }
        let h = sim.spawn(async move {
            let mut out = vec![];
            for _ in 0..10 {
                out.push(rx.recv().await.unwrap());
            }
            out
        });
        assert_eq!(sim.block_on(h), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn closed_channel_yields_none_after_drain() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        tx.send_now(1).unwrap();
        drop(tx);
        let h = sim.spawn(async move {
            let a = rx.recv().await;
            let b = rx.recv().await;
            (a, b)
        });
        assert_eq!(sim.block_on(h), (Some(1), None));
    }

    #[test]
    fn send_to_closed_fails() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send_now(9), Err(SendError(9)));
        assert!(tx.is_closed());
    }

    #[test]
    fn multiple_consumers_share_work() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let got: Rc<StdRefCell<Vec<(usize, u32)>>> = Rc::default();
        for worker in 0..3usize {
            let rx = rx.clone();
            let got = Rc::clone(&got);
            let s = sim.clone();
            sim.spawn(async move {
                while let Some(item) = rx.recv().await {
                    s.sleep(secs(1.0)).await; // busy for 1s each item
                    got.borrow_mut().push((worker, item));
                }
            });
        }
        drop(rx);
        for i in 0..6 {
            tx.send_now(i).unwrap();
        }
        drop(tx);
        let r = sim.run();
        // 6 items, 3 workers, 1s each => 2s total.
        assert_eq!(r.end, SimTime::from_secs(2));
        let got = got.borrow();
        assert_eq!(got.len(), 6);
        let mut items: Vec<u32> = got.iter().map(|&(_, i)| i).collect();
        items.sort_unstable();
        assert_eq!(items, (0..6).collect::<Vec<_>>());
        // All three workers participated.
        let mut workers: Vec<usize> = got.iter().map(|&(w, _)| w).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers, vec![0, 1, 2]);
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let sim = Sim::new();
        let (tx, rx) = bounded::<u32>(2);
        let s = sim.clone();
        let producer = sim.spawn(async move {
            for i in 0..4 {
                tx.send(i).await.unwrap();
            }
            s.now()
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            loop {
                s2.sleep(secs(1.0)).await;
                if rx.recv().await.is_none() {
                    break;
                }
            }
        });
        // Producer can enqueue 2 immediately, then waits for the consumer
        // to drain one per second: items 3 and 4 enter at t=1 and t=2.
        let t = sim.block_on(producer);
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn bounded_send_fails_when_receiver_drops() {
        let sim = Sim::new();
        let (tx, rx) = bounded::<u32>(1);
        tx.send_now(0).unwrap(); // fill
        let producer = sim.spawn(async move { tx.send(1).await });
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            drop(rx);
        });
        assert_eq!(sim.block_on(producer), Err(ClosedError));
    }

    #[test]
    fn try_recv_and_drain() {
        let (tx, rx) = channel::<u32>();
        assert_eq!(rx.try_recv(), None);
        tx.send_now(1).unwrap();
        tx.send_now(2).unwrap();
        tx.send_now(3).unwrap();
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.drain_now(), vec![2, 3]);
        assert!(rx.is_empty());
        assert_eq!(tx.total_sent(), 3);
    }

    /// Regression (formerly a module-doc caveat): a `recv()` future
    /// dropped after registering must not black-hole the wakeup of a
    /// later send. The racer's stale slot is skipped and the item goes
    /// to the patient receiver.
    #[test]
    fn dropped_recv_future_does_not_strand_item() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        // Racer: polls recv once (registering a waker), then a 1s timer
        // wins the race and the recv future is dropped.
        let rx_racer = rx.clone();
        let s = sim.clone();
        let racer = sim.spawn(async move {
            // Box the sleep side to satisfy Unpin; recv is Unpin already.
            matches!(
                select2(rx_racer.recv(), Box::pin(s.sleep(secs(1.0)))).await,
                Either::Right(())
            )
        });
        // Patient receiver registers after the racer.
        let patient = sim.spawn(async move { rx.recv().await });
        // The send happens after the racer abandoned its wait.
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(2.0)).await;
            tx.send_now(7).unwrap();
        });
        assert!(sim.block_on(racer), "timer must win the race");
        // Pre-fix, the racer's stale waker swallowed this wakeup and the
        // item sat queued forever.
        assert_eq!(sim.block_on(patient), Some(7));
    }

    /// A waiter dropped *after* it consumed a wakeup hands the wakeup to
    /// the next waiter instead of stranding the announced item.
    #[test]
    fn notified_then_dropped_recv_passes_wakeup_on() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let ev = Event::new();
        // Racer registers first; the event branch is polled first, so
        // when both fire at once the recv future drops *with* a pending
        // notification.
        let rx_racer = rx.clone();
        let ev2 = ev.clone();
        let racer = sim.spawn(async move {
            matches!(select2(ev2.wait(), rx_racer.recv()).await, Either::Left(()))
        });
        let patient = sim.spawn(async move { rx.recv().await });
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            // Wake the racer through the channel, then resolve its other
            // branch before it runs: the recv notification is consumed
            // but never acted on.
            tx.send_now(42).unwrap();
            ev.set();
        });
        assert!(sim.block_on(racer), "event branch must win");
        assert_eq!(sim.block_on(patient), Some(42), "item must reach the second waiter");
    }

    /// Re-polling a pending recv (e.g. inside select loops) must not
    /// grow per-poll state: the slot is refreshed in place.
    #[test]
    fn repolled_recv_keeps_single_slot() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let s = sim.clone();
        let waiter = sim.spawn(async move {
            let mut recv = rx.recv();
            loop {
                // Race against short timers: every loop iteration
                // re-polls the same pending recv future.
                let sleep = Box::pin(s.sleep(secs(0.1)));
                match select2(&mut recv, sleep).await {
                    Either::Left(v) => return v,
                    Either::Right(()) => {}
                }
            }
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(1.05)).await;
            tx.send_now(5).unwrap();
        });
        assert_eq!(sim.block_on(waiter), Some(5));
    }

    /// Dropping a bounded-channel sender that consumed a capacity
    /// wakeup passes the wakeup to the next blocked sender.
    #[test]
    fn dropped_send_future_passes_capacity_on() {
        let sim = Sim::new();
        let (tx, rx) = bounded::<u32>(1);
        tx.send_now(0).unwrap(); // fill
        let ev = Event::new();
        // First blocked sender will abandon its send when the event fires.
        let tx1 = tx.clone();
        let ev2 = ev.clone();
        let quitter = sim.spawn(async move {
            matches!(select2(ev2.wait(), tx1.send(1)).await, Either::Left(()))
        });
        // Second blocked sender waits it out.
        let tx2 = tx.clone();
        let patient = sim.spawn(async move { tx2.send(2).await });
        drop(tx);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            // Free capacity (waking the quitter), then retire the
            // quitter before it can use it.
            assert_eq!(rx.try_recv(), Some(0));
            ev.set();
            // Patient's send lands; drain it so the channel closes clean.
            s.sleep(secs(1.0)).await;
            assert_eq!(rx.recv().await, Some(2));
            assert_eq!(rx.recv().await, None);
        });
        assert!(sim.block_on(quitter), "event must win");
        assert_eq!(sim.block_on(patient), Ok(()));
    }

    #[test]
    fn try_send_respects_capacity() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(tx.try_send(4), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(5), Err(TrySendError::Closed(5)));
        assert_eq!(TrySendError::Full(7u32).into_inner(), 7);
    }

    #[test]
    fn offer_zero_capacity_is_unbounded() {
        let (tx, rx) = channel::<u32>();
        for i in 0..100 {
            assert_eq!(tx.offer(i, 0, OverflowPolicy::Reject, |_| 0), Offered::Accepted);
        }
        assert_eq!(rx.len(), 100);
    }

    #[test]
    fn offer_reject_displaces_arrival() {
        let (tx, rx) = channel::<u32>();
        assert_eq!(tx.offer(1, 2, OverflowPolicy::Reject, |_| 0), Offered::Accepted);
        assert_eq!(tx.offer(2, 2, OverflowPolicy::Reject, |_| 0), Offered::Accepted);
        assert_eq!(tx.offer(3, 2, OverflowPolicy::Reject, |_| 0), Offered::Displaced(3));
        assert_eq!(rx.drain_now(), vec![1, 2], "queue untouched by a rejected arrival");
    }

    #[test]
    fn offer_shed_oldest_evicts_front() {
        let (tx, rx) = channel::<u32>();
        tx.offer(1, 2, OverflowPolicy::ShedOldest, |_| 0);
        tx.offer(2, 2, OverflowPolicy::ShedOldest, |_| 0);
        assert_eq!(tx.offer(3, 2, OverflowPolicy::ShedOldest, |_| 0), Offered::Displaced(1));
        assert_eq!(rx.drain_now(), vec![2, 3], "FIFO order with the newest at the back");
    }

    #[test]
    fn offer_shed_lowest_priority_picks_victim() {
        // Priority = the value itself; higher keeps its place.
        let pri = |v: &u32| u64::from(*v);
        let (tx, rx) = channel::<u32>();
        tx.offer(5, 3, OverflowPolicy::ShedLowestPriority, pri);
        tx.offer(2, 3, OverflowPolicy::ShedLowestPriority, pri);
        tx.offer(8, 3, OverflowPolicy::ShedLowestPriority, pri);
        // Arrival (6) outranks the lowest queued (2): 2 is shed.
        assert_eq!(tx.offer(6, 3, OverflowPolicy::ShedLowestPriority, pri), Offered::Displaced(2));
        // Arrival (1) is strictly the lowest: it is refused itself.
        assert_eq!(tx.offer(1, 3, OverflowPolicy::ShedLowestPriority, pri), Offered::Displaced(1));
        // Ties go to the oldest queued item, not the arrival.
        assert_eq!(tx.offer(5, 3, OverflowPolicy::ShedLowestPriority, pri), Offered::Displaced(5));
        assert_eq!(rx.drain_now(), vec![8, 6, 5]);
    }

    #[test]
    fn offer_closed_returns_value() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.offer(9, 1, OverflowPolicy::ShedOldest, |_| 0), Offered::Closed(9));
    }

    /// An accepted offer wakes a waiting receiver exactly like send_now.
    #[test]
    fn offer_wakes_waiting_receiver() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let waiter = sim.spawn(async move { rx.recv().await });
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            assert_eq!(tx.offer(11, 4, OverflowPolicy::ShedOldest, |_| 0), Offered::Accepted);
        });
        assert_eq!(sim.block_on(waiter), Some(11));
    }

    #[test]
    fn oneshot_roundtrip() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u64>();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(5.0)).await;
            tx.send(99);
        });
        let h = sim.spawn(rx);
        assert_eq!(sim.block_on(h), Ok(99));
    }

    #[test]
    fn oneshot_dropped_sender() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<u64>();
        sim.spawn(async move {
            drop(tx);
        });
        let h = sim.spawn(rx);
        assert_eq!(sim.block_on(h), Err(Dropped));
    }

    #[test]
    fn oneshot_send_before_recv() {
        let sim = Sim::new();
        let (tx, rx) = oneshot::<&str>();
        tx.send("early");
        let h = sim.spawn(rx);
        assert_eq!(sim.block_on(h), Ok("early"));
    }
}
