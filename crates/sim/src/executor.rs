//! Single-threaded async executor over virtual time.
//!
//! Every actor in the system — thinker agents, task servers, FaaS
//! endpoints, workers, transfer services — is an async task spawned on a
//! [`Sim`]. Awaiting [`Sim::sleep`] advances the virtual clock instead of
//! wall time; the run loop polls all runnable tasks, then jumps the clock
//! to the next timer. Execution is deterministic: tasks are polled in FIFO
//! wake order and timers fire in `(deadline, registration order)` order.

use crate::rng::SimRng;
use crate::time::SimTime;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

type TaskId = u64;
type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// FIFO queue of runnable task ids, shared with wakers.
///
/// This is the only piece of executor state behind a `Mutex`: `Waker` must
/// be `Send + Sync` by type even though this executor never leaves its
/// thread, so the wake path uses a lock-based queue instead of a `RefCell`.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    // A poisoned lock is harmless here: the queue holds plain task ids,
    // so a panic mid-push leaves no broken invariant to propagate. Eat
    // the poison instead of double-panicking on the wake path.
    fn push(&self, id: TaskId) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(id);
    }
    fn pop(&self) -> Option<TaskId> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A timer registration: fired flag plus the waker of the sleeping task.
struct TimerEntry {
    fired: Cell<bool>,
    cancelled: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

struct TimerKey {
    at: SimTime,
    /// Tie-break among equal deadlines. Zero in normal operation (so
    /// `seq` — registration order — decides); a seeded random draw in
    /// [`Sim::set_tie_shuffle`] mode, which perturbs the firing order of
    /// exactly the timers whose order the determinism contract says must
    /// not matter.
    tie: u64,
    seq: u64,
    entry: Rc<TimerEntry>,
}

impl PartialEq for TimerKey {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tie == other.tie && self.seq == other.seq
    }
}
impl Eq for TimerKey {}
impl PartialOrd for TimerKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.tie, self.seq).cmp(&(other.at, other.tie, other.seq))
    }
}

struct Core {
    now: Cell<SimTime>,
    next_task: Cell<TaskId>,
    next_timer_seq: Cell<u64>,
    timers: RefCell<BinaryHeap<Reverse<TimerKey>>>,
    ready: Arc<ReadyQueue>,
    tasks: RefCell<HashMap<TaskId, LocalFuture>>,
    polls: Cell<u64>,
    timer_fires: Cell<u64>,
    tie_shuffle: RefCell<Option<SimRng>>,
}

/// Summary of a completed [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Clock value when the run stopped.
    pub end: SimTime,
    /// Total future polls performed.
    pub polls: u64,
    /// Timers that fired.
    pub timer_fires: u64,
    /// Tasks still pending when the run stopped. Nonzero after a full
    /// [`Sim::run`] means some actor is blocked on an event that can never
    /// occur — usually a workflow bug.
    pub pending_tasks: usize,
}

/// Handle to the simulation: clock, spawner, and timer source.
///
/// Cheap to clone; every actor captures one.
#[derive(Clone)]
pub struct Sim {
    core: Rc<Core>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at t=0.
    pub fn new() -> Self {
        Sim {
            core: Rc::new(Core {
                now: Cell::new(SimTime::ZERO),
                next_task: Cell::new(0),
                next_timer_seq: Cell::new(0),
                timers: RefCell::new(BinaryHeap::new()),
                ready: Arc::new(ReadyQueue::default()),
                tasks: RefCell::new(HashMap::new()),
                polls: Cell::new(0),
                timer_fires: Cell::new(0),
                tie_shuffle: RefCell::new(None),
            }),
        }
    }

    /// Enables schedule-perturbation mode: timers registered from now on
    /// get a seeded random tie-break that decides firing order among
    /// *equal* deadlines (unequal deadlines still fire in time order).
    ///
    /// The determinism contract promises that nothing observable depends
    /// on the FIFO order of same-instant timers — actors that collide at
    /// one instant must be logically independent. This mode is the
    /// runtime sanitizer for that claim: run the same seed under several
    /// shuffle seeds and assert the `Tracer::digest` is invariant. A
    /// digest change pinpoints a hidden same-timestamp ordering
    /// dependency — a race no token-level or call-graph rule can see.
    ///
    /// The shuffle stream is internal to the executor and consumes no
    /// draws from any workload stream, so enabling it never perturbs
    /// workload randomness.
    pub fn set_tie_shuffle(&self, seed: u64) {
        *self.core.tie_shuffle.borrow_mut() =
            Some(SimRng::stream(seed, "executor-tie-shuffle"));
    }

    /// Creates a simulation with tie-shuffle mode enabled from t=0.
    pub fn with_tie_shuffle(seed: u64) -> Self {
        let sim = Sim::new();
        sim.set_tie_shuffle(seed);
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Spawns an async task; it becomes runnable immediately.
    ///
    /// Returns a [`JoinHandle`] that resolves to the task's output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState { result: None, waker: None }));
        let state2 = Rc::clone(&state);
        let id = self.core.next_task.get();
        self.core.next_task.set(id + 1);
        let wrapped: LocalFuture = Box::pin(async move {
            let out = fut.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        self.core.tasks.borrow_mut().insert(id, wrapped);
        self.core.ready.push(id);
        JoinHandle { state }
    }

    /// Returns a future that completes after `d` of virtual time.
    pub fn sleep(&self, d: Duration) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now() + d,
            entry: None,
        }
    }

    /// Returns a future that completes at the absolute instant `at`
    /// (immediately if `at` is in the past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep { sim: self.clone(), deadline: at, entry: None }
    }

    /// Yields once, letting every currently runnable task proceed before
    /// this one resumes (at the same instant).
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { sim: self.clone(), polled: false }
    }

    fn register_timer(&self, at: SimTime) -> Rc<TimerEntry> {
        let entry = Rc::new(TimerEntry {
            fired: Cell::new(false),
            cancelled: Cell::new(false),
            waker: RefCell::new(None),
        });
        let seq = self.core.next_timer_seq.get();
        self.core.next_timer_seq.set(seq + 1);
        let tie = match self.core.tie_shuffle.borrow_mut().as_mut() {
            Some(rng) => rng.next_u64(),
            None => 0,
        };
        self.core.timers.borrow_mut().push(Reverse(TimerKey {
            at,
            tie,
            seq,
            entry: Rc::clone(&entry),
        }));
        entry
    }

    fn make_waker(&self, id: TaskId) -> Waker {
        Waker::from(Arc::new(TaskWaker { id, ready: Arc::clone(&self.core.ready) }))
    }

    /// Polls every runnable task until none is runnable at the current
    /// instant. Does not advance the clock. Returns the number of polls.
    fn drain_ready(&self) -> u64 {
        let mut polls = 0;
        while let Some(id) = self.core.ready.pop() {
            // Remove the future from the map while polling so the map is
            // free for re-entrant spawns.
            let fut = self.core.tasks.borrow_mut().remove(&id);
            let Some(mut fut) = fut else {
                continue; // completed task woken again: spurious, ignore
            };
            let waker = self.make_waker(id);
            let mut cx = Context::from_waker(&waker);
            polls += 1;
            self.core.polls.set(self.core.polls.get() + 1);
            if fut.as_mut().poll(&mut cx).is_pending() {
                self.core.tasks.borrow_mut().insert(id, fut);
            }
        }
        polls
    }

    /// Fires the earliest pending timer, advancing the clock to it.
    /// Returns false when no live timer remains.
    fn fire_next_timer(&self) -> bool {
        loop {
            let popped = self.core.timers.borrow_mut().pop();
            let Some(Reverse(key)) = popped else { return false };
            if key.entry.cancelled.get() {
                continue; // dropped Sleep; skip without advancing time
            }
            debug_assert!(key.at >= self.core.now.get(), "time went backwards");
            self.core.now.set(key.at);
            self.core.timer_fires.set(self.core.timer_fires.get() + 1);
            key.entry.fired.set(true);
            if let Some(w) = key.entry.waker.borrow_mut().take() {
                w.wake();
            }
            return true;
        }
    }

    /// Peeks at the deadline of the earliest live timer.
    fn next_deadline(&self) -> Option<SimTime> {
        let mut timers = self.core.timers.borrow_mut();
        while let Some(Reverse(key)) = timers.peek() {
            if key.entry.cancelled.get() {
                timers.pop();
            } else {
                return Some(key.at);
            }
        }
        None
    }

    /// Runs until no task is runnable and no timer is pending
    /// (quiescence).
    pub fn run(&self) -> RunReport {
        loop {
            self.drain_ready();
            if !self.fire_next_timer() {
                break;
            }
        }
        self.report()
    }

    /// Runs until quiescence or until the clock would pass `deadline`;
    /// in the latter case the clock is left exactly at `deadline`.
    pub fn run_until(&self, deadline: SimTime) -> RunReport {
        loop {
            self.drain_ready();
            match self.next_deadline() {
                Some(at) if at <= deadline => {
                    self.fire_next_timer();
                }
                _ => break,
            }
        }
        if self.core.now.get() < deadline {
            self.core.now.set(deadline);
        }
        self.report()
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&self, d: Duration) -> RunReport {
        self.run_until(self.now() + d)
    }

    /// Drives the simulation until `handle` completes, then returns its
    /// output. Panics if the simulation goes quiescent first (the awaited
    /// task would then never finish).
    pub fn block_on<T: 'static>(&self, handle: JoinHandle<T>) -> T {
        loop {
            if let Some(v) = handle.try_take() {
                return v;
            }
            self.drain_ready();
            if let Some(v) = handle.try_take() {
                return v;
            }
            if !self.fire_next_timer() {
                // hetlint: allow(r5) — executor deadlock detection must abort: the sim itself is wedged
                panic!(
                    "simulation quiescent at {} with awaited task incomplete \
                     ({} tasks leaked)",
                    self.now(),
                    self.core.tasks.borrow().len()
                );
            }
        }
    }

    fn report(&self) -> RunReport {
        RunReport {
            end: self.now(),
            polls: self.core.polls.get(),
            timer_fires: self.core.timer_fires.get(),
            pending_tasks: self.core.tasks.borrow().len(),
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task's output.
///
/// Await it from another task, or pass it to [`Sim::block_on`] from
/// outside the simulation.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Takes the output if the task has finished.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// True once the task has finished (and the output not yet taken).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.result.take() {
            Poll::Ready(v)
        } else {
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    entry: Option<Rc<TimerEntry>>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.deadline <= self.sim.now() {
            return Poll::Ready(());
        }
        match &self.entry {
            None => {
                let entry = self.sim.register_timer(self.deadline);
                *entry.waker.borrow_mut() = Some(cx.waker().clone());
                self.entry = Some(entry);
                Poll::Pending
            }
            Some(entry) => {
                if entry.fired.get() {
                    Poll::Ready(())
                } else {
                    *entry.waker.borrow_mut() = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        // Lazily cancel so an abandoned sleep (e.g. the losing arm of a
        // select) neither fires a stale waker nor advances the clock.
        if let Some(entry) = &self.entry {
            if !entry.fired.get() {
                entry.cancelled.set(true);
                entry.waker.borrow_mut().take();
            }
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    sim: Sim,
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let _ = &self.sim;
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn empty_sim_quiesces_at_zero() {
        let sim = Sim::new();
        let r = sim.run();
        assert_eq!(r.end, SimTime::ZERO);
        assert_eq!(r.pending_tasks, 0);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1.5)).await;
            assert_eq!(s.now(), SimTime::from_millis(1500));
        });
        let r = sim.run();
        assert_eq!(r.end, SimTime::from_millis(1500));
        assert_eq!(r.pending_tasks, 0);
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            s.sleep(secs(2.0)).await;
            s.now()
        });
        let end = sim.block_on(h);
        assert_eq!(end, SimTime::from_secs(3));
    }

    #[test]
    fn concurrent_tasks_interleave_by_time() {
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<(&str, SimTime)>>> = Rc::default();
        for (name, delay) in [("b", 2.0), ("a", 1.0), ("c", 3.0)] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(secs(delay)).await;
                log.borrow_mut().push((name, s.now()));
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(
            log.as_slice(),
            &[
                ("a", SimTime::from_secs(1)),
                ("b", SimTime::from_secs(2)),
                ("c", SimTime::from_secs(3))
            ]
        );
    }

    #[test]
    fn same_deadline_fires_in_registration_order() {
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<u32>>> = Rc::default();
        for i in 0..5u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(secs(1.0)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(log.borrow().as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(Duration::ZERO).await;
            s.now()
        });
        assert_eq!(sim.block_on(h), SimTime::ZERO);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            42u32
        });
        assert_eq!(sim.block_on(h), 42);
    }

    #[test]
    fn join_handle_awaitable_from_other_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let inner = sim.spawn(async move {
            s.sleep(secs(2.0)).await;
            7u32
        });
        let s2 = sim.clone();
        let outer = sim.spawn(async move {
            let v = inner.await;
            (v, s2.now())
        });
        let (v, t) = sim.block_on(outer);
        assert_eq!(v, 7);
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn nested_spawn_runs() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let s2 = s.clone();
            let child = s.spawn(async move {
                s2.sleep(secs(1.0)).await;
                "child done"
            });
            child.await
        });
        assert_eq!(sim.block_on(h), "child done");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new();
        let s = sim.clone();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            s.sleep(secs(10.0)).await;
            done2.set(true);
        });
        let r = sim.run_until(SimTime::from_secs(5));
        assert_eq!(r.end, SimTime::from_secs(5));
        assert!(!done.get());
        assert_eq!(r.pending_tasks, 1);
        // Continue to completion.
        let r = sim.run();
        assert_eq!(r.end, SimTime::from_secs(10));
        assert!(done.get());
    }

    #[test]
    fn run_until_with_no_timers_jumps_clock() {
        let sim = Sim::new();
        let r = sim.run_until(SimTime::from_secs(9));
        assert_eq!(r.end, SimTime::from_secs(9));
    }

    #[test]
    fn run_for_is_relative() {
        let sim = Sim::new();
        sim.run_for(secs(2.0));
        sim.run_for(secs(3.0));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn yield_now_lets_peers_run_at_same_instant() {
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<&str>>> = Rc::default();
        let s = sim.clone();
        let l1 = Rc::clone(&log);
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            s.yield_now().await;
            l1.borrow_mut().push("a2");
        });
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
        });
        let r = sim.run();
        assert_eq!(log.borrow().as_slice(), &["a1", "b1", "a2"]);
        assert_eq!(r.end, SimTime::ZERO);
    }

    #[test]
    fn dropped_sleep_does_not_advance_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            let long = s.sleep(secs(100.0));
            drop(long); // e.g. losing select arm
            s.sleep(secs(1.0)).await;
        });
        let r = sim.run();
        assert_eq!(r.end, SimTime::from_secs(1));
    }

    #[test]
    fn many_tasks_deterministic() {
        let run = || {
            let sim = Sim::new();
            let acc: Rc<StdRefCell<Vec<u64>>> = Rc::default();
            for i in 0..200u64 {
                let s = sim.clone();
                let acc = Rc::clone(&acc);
                sim.spawn(async move {
                    s.sleep(secs(((i * 37) % 17) as f64 * 0.1)).await;
                    acc.borrow_mut().push(i);
                });
            }
            sim.run();
            let order = acc.borrow().clone();
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "quiescent")]
    fn block_on_panics_on_deadlock() {
        let sim = Sim::new();
        // A task that waits on a JoinHandle that can never complete
        // because nothing drives the inner future.
        let (never, _keep) = {
            let inner: JoinHandle<()> = JoinHandle {
                state: Rc::new(RefCell::new(JoinState { result: None, waker: None })),
            };
            (inner, ())
        };
        let h = sim.spawn(never);
        sim.block_on(h);
    }

    #[test]
    fn report_counts_polls_and_timers() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..3 {
                s.sleep(secs(1.0)).await;
            }
        });
        let r = sim.run();
        assert_eq!(r.timer_fires, 3);
        assert!(r.polls >= 4);
    }

    /// Spawns `n` tasks that all sleep until the same instant and
    /// records the order their timers fire in.
    fn equal_deadline_order(shuffle: Option<u64>) -> Vec<u64> {
        let sim = match shuffle {
            Some(seed) => Sim::with_tie_shuffle(seed),
            None => Sim::new(),
        };
        let acc: Rc<StdRefCell<Vec<u64>>> = Rc::default();
        for i in 0..16u64 {
            let s = sim.clone();
            let acc = Rc::clone(&acc);
            sim.spawn(async move {
                s.sleep(secs(5.0)).await;
                acc.borrow_mut().push(i);
            });
        }
        sim.run();
        let order = acc.borrow().clone();
        order
    }

    #[test]
    fn tie_shuffle_perturbs_equal_deadlines_deterministically() {
        let fifo = equal_deadline_order(None);
        assert_eq!(fifo, (0..16).collect::<Vec<_>>(), "default mode is FIFO");
        let a = equal_deadline_order(Some(7));
        assert_eq!(a, equal_deadline_order(Some(7)), "same shuffle seed replays");
        assert_ne!(a, fifo, "shuffle should perturb same-instant order");
        assert_ne!(a, equal_deadline_order(Some(8)), "seeds should differ");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "a permutation, no loss");
    }

    #[test]
    fn tie_shuffle_preserves_time_order_across_deadlines() {
        let sim = Sim::with_tie_shuffle(3);
        let acc: Rc<StdRefCell<Vec<u64>>> = Rc::default();
        for i in 0..10u64 {
            let s = sim.clone();
            let acc = Rc::clone(&acc);
            sim.spawn(async move {
                s.sleep(secs((10 - i) as f64)).await;
                acc.borrow_mut().push(i);
            });
        }
        sim.run();
        // Distinct deadlines: the shuffle never reorders across time.
        assert_eq!(acc.borrow().clone(), (0..10u64).rev().collect::<Vec<_>>());
    }
}
