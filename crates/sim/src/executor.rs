//! Single-threaded async executor over virtual time.
//!
//! Every actor in the system — thinker agents, task servers, FaaS
//! endpoints, workers, transfer services — is an async task spawned on a
//! [`Sim`]. Awaiting [`Sim::sleep`] advances the virtual clock instead of
//! wall time; the run loop polls all runnable tasks, then jumps the clock
//! to the next timer. Execution is deterministic: tasks are polled in FIFO
//! wake order and timers fire in `(deadline, registration order)` order.
//!
//! ## Timer store
//!
//! Timers live in a hierarchical calendar queue ([`TimerWheel`]): 11
//! levels of 64 slots, level `L` spanning `64^L` ns per slot, with an
//! occupancy bitmap per level. Insert and cancel are O(1); finding the
//! next timer scans 11 bitmaps and cascades at most a handful of buckets.
//! Firing order is *exactly* the old binary-heap order — the global
//! lexicographic minimum of `(deadline, tie, registration seq)` — which
//! the property test below checks against a heap reference under random
//! insert/cancel/advance scripts. Two details keep the wheel honest:
//!
//! * **Eager cancellation.** A dropped [`Sleep`] removes its entry from
//!   its bucket immediately (the slab records which bucket), so the pop
//!   path never wades through tombstones.
//! * **Backlog heap.** Peeking the next deadline cascades buckets and
//!   advances the wheel cursor up to the minimum pending deadline; if
//!   [`Sim::run_until`] then truncates the clock *below* the cursor, a
//!   subsequently registered near-term timer would land behind the
//!   cursor. Those (rare) entries go to a small binary heap that is
//!   merged by `(deadline, tie, seq)` at pop time.

use crate::rng::SimRng;
use crate::time::SimTime;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

/// Task ids pack a slab index and a generation so a recycled slot never
/// mistakes a stale wake-up for its own.
type TaskId = u64;
type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

#[inline]
fn pack_task(idx: u32, gen: u32) -> TaskId {
    (u64::from(gen) << 32) | u64::from(idx)
}

#[inline]
fn unpack_task(id: TaskId) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

/// Ready-ring capacity. Must be a power of two. 1024 runnable tasks at
/// one instant covers every current workload; bursts beyond it spill to
/// the overflow deque and merely pay the old lock cost.
const READY_CAP: usize = 1024;

/// FIFO queue of runnable task ids, shared with wakers.
///
/// `Waker` must be `Send + Sync` by type even though this executor never
/// leaves its thread, so the wake path cannot use a `RefCell`. An
/// uncontended `Mutex` push+pop cycle costs ~40 ns on the hot path
/// (~25 cycles per simulated task), so the common path is a bounded
/// atomic MPSC ring instead (~17 ns per cycle); a mutexed deque absorbs
/// bursts that outrun the ring. Global FIFO order — the order the trace
/// digests pin — is preserved across the spill: once anything has
/// spilled, *all* pushes go to the overflow until the consumer drains
/// it empty, so no late ring entry can overtake an earlier spilled one.
///
/// Slots store `id + 1` so 0 can mean "empty"; ids cannot reach
/// `u64::MAX` because the slab index half is bounded by live memory.
struct ReadyQueue {
    ring: Box<[AtomicU64]>,
    /// Consumer cursor. Only `pop` (executor thread) advances it.
    head: AtomicUsize,
    /// Producer cursor. Advanced by CAS so a full ring is never
    /// over-reserved.
    tail: AtomicUsize,
    /// True while `overflow` holds entries; forces pushes to the
    /// overflow so FIFO order survives the spill.
    spilled: AtomicBool,
    overflow: Mutex<std::collections::VecDeque<TaskId>>,
}

impl Default for ReadyQueue {
    fn default() -> Self {
        ReadyQueue {
            ring: (0..READY_CAP).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            spilled: AtomicBool::new(false),
            overflow: Mutex::new(std::collections::VecDeque::new()),
        }
    }
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        if !self.spilled.load(Ordering::Acquire) {
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let head = self.head.load(Ordering::Acquire);
                if tail.wrapping_sub(head) >= READY_CAP {
                    break; // ring full: spill
                }
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.ring[tail & (READY_CAP - 1)]
                            .store(id.wrapping_add(1), Ordering::Release);
                        return;
                    }
                    Err(t) => tail = t,
                }
            }
        }
        // A poisoned lock is harmless here: the deque holds plain task
        // ids, so a panic mid-push leaves no broken invariant. Eat the
        // poison instead of double-panicking on the wake path.
        let mut ov = self
            .overflow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ov.push_back(id);
        self.spilled.store(true, Ordering::Release);
    }

    fn pop(&self) -> Option<TaskId> {
        let head = self.head.load(Ordering::Relaxed);
        if head != self.tail.load(Ordering::Acquire) {
            let slot = &self.ring[head & (READY_CAP - 1)];
            loop {
                let v = slot.swap(0, Ordering::AcqRel);
                if v != 0 {
                    self.head.store(head.wrapping_add(1), Ordering::Release);
                    return Some(v.wrapping_sub(1));
                }
                // A producer reserved this slot but has not published
                // yet; its store is at most an instruction away.
                std::hint::spin_loop();
            }
        }
        if self.spilled.load(Ordering::Acquire) {
            let mut ov = self
                .overflow
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let v = ov.pop_front();
            if ov.is_empty() {
                self.spilled.store(false, Ordering::Release);
            }
            return v;
        }
        None
    }
}

struct TaskWaker {
    /// Atomic only because `Waker` demands `Sync`: the id is rewritten
    /// when a recycled slot reuses this allocation for its next tenant.
    id: AtomicU64,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id.load(Ordering::Relaxed));
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id.load(Ordering::Relaxed));
    }
}

/// One task slot: the future (taken out while being polled) plus a
/// cached waker. The waker is allocated once per task at spawn; every
/// `cx.waker().clone()` a future performs is then just an `Arc` refcount
/// bump instead of a fresh allocation per poll.
struct TaskSlot {
    gen: u32,
    fut: Option<LocalFuture>,
    waker: Waker,
    /// The same allocation `waker` wraps, kept so slot reuse can rewrite
    /// the packed id in place instead of allocating a fresh `Arc` — but
    /// only when no outstanding clone could misdirect a stale wake (see
    /// the strong-count check in [`Sim::spawn`]).
    waker_arc: Arc<TaskWaker>,
}

#[derive(Default)]
struct TaskSlab {
    slots: Vec<TaskSlot>,
    free: Vec<u32>,
}

// ---------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------

const LEVEL_BITS: usize = 6;
const SLOTS: usize = 1 << LEVEL_BITS; // 64
/// 11 levels × 6 bits = 66 bits ≥ the 64-bit nanosecond clock, so the
/// wheel covers the entire representable time range with no overflow
/// bucket.
const LEVELS: usize = 11;

/// Handle to a registered timer: slab index + generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct TimerHandle {
    idx: u32,
    gen: u32,
}

/// Where a live timer currently sits.
#[derive(Clone, Copy, Debug)]
enum Loc {
    /// In `buckets[level * SLOTS + slot]`.
    Wheel { level: u8, slot: u8 },
    /// In the behind-cursor backlog heap (removed lazily via gen check).
    Backlog,
    /// Popped and woken; the slab slot lingers until the `Sleep` drops.
    Fired,
    /// On the free list.
    Free,
}

struct TimerSlot {
    gen: u32,
    loc: Loc,
    waker: Option<Waker>,
}

#[derive(Clone, Copy)]
struct WheelEntry {
    at: u64,
    /// Tie-break among equal deadlines. Zero in normal operation (so
    /// `seq` — registration order — decides); a seeded random draw in
    /// [`Sim::set_tie_shuffle`] mode, which perturbs the firing order of
    /// exactly the timers whose order the determinism contract says must
    /// not matter.
    tie: u64,
    seq: u64,
    idx: u32,
}

/// Backlog key: `(at, tie, seq, idx, gen)` — ordered exactly like the
/// old binary-heap key so merged pops keep the seed tree's firing order.
type BacklogKey = (u64, u64, u64, u32, u32);

/// What [`TimerWheel::pop`] fired.
struct Fired {
    at: u64,
    #[cfg_attr(not(test), allow(dead_code))]
    tie: u64,
    #[cfg_attr(not(test), allow(dead_code))]
    seq: u64,
    waker: Option<Waker>,
}

struct TimerWheel {
    slab: Vec<TimerSlot>,
    free: Vec<u32>,
    /// Wheel cursor: every wheel-resident entry has `at >= elapsed`, and
    /// `elapsed` never exceeds the minimum pending deadline.
    elapsed: u64,
    occ: [u64; LEVELS],
    buckets: Vec<Vec<WheelEntry>>,
    backlog: BinaryHeap<Reverse<BacklogKey>>,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel {
            slab: Vec::new(),
            free: Vec::new(),
            elapsed: 0,
            occ: [0; LEVELS],
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            backlog: BinaryHeap::new(),
        }
    }
}

/// The level whose slot granularity separates `at` from `elapsed`: the
/// highest 6-bit group where they differ (0 when equal).
#[inline]
fn level_for(elapsed: u64, at: u64) -> usize {
    let masked = (elapsed ^ at) | (SLOTS as u64 - 1);
    ((63 - masked.leading_zeros()) as usize) / LEVEL_BITS
}

impl TimerWheel {
    fn register(&mut self, at: u64, tie: u64, seq: u64) -> TimerHandle {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                let i = self.slab.len() as u32;
                self.slab.push(TimerSlot { gen: 0, loc: Loc::Free, waker: None });
                i
            }
        };
        let gen = self.slab[idx as usize].gen;
        if at < self.elapsed {
            // Behind the cursor (peek cascaded past the clock, then the
            // clock was truncated): heap it, merge at pop time.
            self.backlog.push(Reverse((at, tie, seq, idx, gen)));
            self.slab[idx as usize].loc = Loc::Backlog;
        } else {
            self.place(WheelEntry { at, tie, seq, idx });
        }
        TimerHandle { idx, gen }
    }

    /// Inserts a wheel entry at its level/slot and records the location
    /// in the slab (for eager cancellation).
    fn place(&mut self, e: WheelEntry) {
        debug_assert!(e.at >= self.elapsed);
        let l = level_for(self.elapsed, e.at);
        let s = ((e.at >> (LEVEL_BITS * l)) & (SLOTS as u64 - 1)) as usize;
        self.buckets[l * SLOTS + s].push(e);
        self.occ[l] |= 1u64 << s;
        self.slab[e.idx as usize].loc = Loc::Wheel { level: l as u8, slot: s as u8 };
    }

    /// First instant covered by slot `s` of level `l`, relative to the
    /// cursor's position on the coarser levels.
    #[inline]
    fn slot_start(&self, l: usize, s: usize) -> u64 {
        let high_shift = LEVEL_BITS * (l + 1);
        let high = if high_shift >= 64 {
            0
        } else {
            (self.elapsed >> high_shift) << high_shift
        };
        high | ((s as u64) << (LEVEL_BITS * l))
    }

    /// Cascades until the minimum pending wheel entry sits in a level-0
    /// bucket; returns that bucket's index (level-0 buckets hold entries
    /// of a single deadline). Advances `elapsed` to the minimum pending
    /// deadline as a side effect. `None` when the wheel is empty.
    fn settle_min(&mut self) -> Option<usize> {
        loop {
            let mut best: Option<(usize, usize, u64)> = None;
            for l in 0..LEVELS {
                if self.occ[l] == 0 {
                    continue;
                }
                let cur = ((self.elapsed >> (LEVEL_BITS * l)) & (SLOTS as u64 - 1)) as u32;
                let masked = self.occ[l] & (!0u64 << cur);
                debug_assert_ne!(masked, 0, "wheel entry behind cursor at level {l}");
                let bits = if masked != 0 { masked } else { self.occ[l] };
                let s = bits.trailing_zeros() as usize;
                let start = self.slot_start(l, s);
                let better = match best {
                    None => true,
                    // On equal starts prefer the coarser level: its
                    // entries may tie with the fine bucket and must be
                    // cascaded down before the minimum can be read.
                    Some((bl, _, bstart)) => start < bstart || (start == bstart && l > bl),
                };
                if better {
                    best = Some((l, s, start));
                }
            }
            let (l, s, start) = best?;
            self.elapsed = self.elapsed.max(start);
            if l == 0 {
                return Some(s);
            }
            // Cascade: with the cursor advanced to the slot start, every
            // entry here now agrees with `elapsed` on all groups >= l and
            // re-places at a strictly lower level.
            self.occ[l] &= !(1u64 << s);
            let mut moved = std::mem::take(&mut self.buckets[l * SLOTS + s]);
            for e in moved.drain(..) {
                debug_assert!(level_for(self.elapsed, e.at) < l);
                self.place(e);
            }
            // Hand the drained allocation back so the bucket keeps its
            // capacity across cascades.
            self.buckets[l * SLOTS + s] = moved;
        }
    }

    /// Minimum live backlog key, discarding stale (released) entries.
    fn backlog_peek(&mut self) -> Option<(u64, u64, u64, u32)> {
        while let Some(&Reverse((at, tie, seq, idx, gen))) = self.backlog.peek() {
            if self.slab[idx as usize].gen == gen {
                debug_assert!(matches!(self.slab[idx as usize].loc, Loc::Backlog));
                return Some((at, tie, seq, idx));
            }
            self.backlog.pop();
        }
        None
    }

    /// Earliest pending deadline, or `None`.
    fn peek(&mut self) -> Option<u64> {
        let wheel = self.settle_min().map(|s| self.buckets[s][0].at);
        let backlog = self.backlog_peek().map(|(at, ..)| at);
        match (wheel, backlog) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fires the globally minimum `(at, tie, seq)` pending timer.
    fn pop(&mut self) -> Option<Fired> {
        let wheel = self.settle_min().map(|s| {
            let b = &self.buckets[s];
            let mut mi = 0;
            for i in 1..b.len() {
                if (b[i].tie, b[i].seq) < (b[mi].tie, b[mi].seq) {
                    mi = i;
                }
            }
            (s, mi)
        });
        let backlog = self.backlog_peek();
        match (wheel, backlog) {
            (None, None) => None,
            (Some((s, mi)), None) => Some(self.pop_wheel(s, mi)),
            (None, Some((at, _, _, idx))) => Some(self.pop_backlog(at, idx)),
            (Some((s, mi)), Some((bat, btie, bseq, bidx))) => {
                let e = self.buckets[s][mi];
                if (e.at, e.tie, e.seq) <= (bat, btie, bseq) {
                    Some(self.pop_wheel(s, mi))
                } else {
                    Some(self.pop_backlog(bat, bidx))
                }
            }
        }
    }

    fn pop_wheel(&mut self, s: usize, mi: usize) -> Fired {
        let e = self.buckets[s].swap_remove(mi);
        if self.buckets[s].is_empty() {
            self.occ[0] &= !(1u64 << s);
        }
        self.elapsed = e.at;
        let slot = &mut self.slab[e.idx as usize];
        slot.loc = Loc::Fired;
        Fired { at: e.at, tie: e.tie, seq: e.seq, waker: slot.waker.take() }
    }

    fn pop_backlog(&mut self, at: u64, idx: u32) -> Fired {
        let (tie, seq) = match self.backlog.pop() {
            Some(Reverse((_, tie, seq, _, _))) => (tie, seq),
            None => (0, 0), // unreachable: caller just peeked it
        };
        let slot = &mut self.slab[idx as usize];
        slot.loc = Loc::Fired;
        Fired { at, tie, seq, waker: slot.waker.take() }
    }

    /// True once the timer has fired (the owning `Sleep` may then resolve).
    fn is_fired(&self, h: TimerHandle) -> bool {
        let slot = &self.slab[h.idx as usize];
        slot.gen == h.gen && matches!(slot.loc, Loc::Fired)
    }

    fn set_waker(&mut self, h: TimerHandle, w: Waker) {
        let slot = &mut self.slab[h.idx as usize];
        if slot.gen == h.gen {
            slot.waker = Some(w);
        }
    }

    /// Releases a handle: cancels the timer if still pending (eagerly
    /// removing wheel entries) and frees the slab slot.
    fn release(&mut self, h: TimerHandle) {
        let Some(slot) = self.slab.get_mut(h.idx as usize) else { return };
        if slot.gen != h.gen {
            return;
        }
        let loc = slot.loc;
        match loc {
            Loc::Wheel { level, slot: s } => {
                let b = &mut self.buckets[level as usize * SLOTS + s as usize];
                if let Some(pos) = b.iter().position(|e| e.idx == h.idx) {
                    b.swap_remove(pos);
                }
                if b.is_empty() {
                    self.occ[level as usize] &= !(1u64 << s);
                }
            }
            // Backlog keys are discarded lazily via the gen check.
            Loc::Backlog | Loc::Fired | Loc::Free => {}
        }
        let slot = &mut self.slab[h.idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.loc = Loc::Free;
        slot.waker = None;
        self.free.push(h.idx);
    }
}

struct Core {
    now: Cell<SimTime>,
    next_timer_seq: Cell<u64>,
    timers: RefCell<TimerWheel>,
    ready: Arc<ReadyQueue>,
    tasks: RefCell<TaskSlab>,
    /// Spawned-but-unfinished tasks (futures out being polled included).
    live_tasks: Cell<usize>,
    polls: Cell<u64>,
    timer_fires: Cell<u64>,
    tie_shuffle: RefCell<Option<SimRng>>,
}

/// Summary of a completed [`Sim::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Clock value when the run stopped.
    pub end: SimTime,
    /// Total future polls performed.
    pub polls: u64,
    /// Timers that fired.
    pub timer_fires: u64,
    /// Tasks still pending when the run stopped. Nonzero after a full
    /// [`Sim::run`] means some actor is blocked on an event that can never
    /// occur — usually a workflow bug.
    pub pending_tasks: usize,
}

/// Handle to the simulation: clock, spawner, and timer source.
///
/// Cheap to clone; every actor captures one.
#[derive(Clone)]
pub struct Sim {
    core: Rc<Core>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at t=0.
    pub fn new() -> Self {
        Sim {
            core: Rc::new(Core {
                now: Cell::new(SimTime::ZERO),
                next_timer_seq: Cell::new(0),
                timers: RefCell::new(TimerWheel::default()),
                ready: Arc::new(ReadyQueue::default()),
                tasks: RefCell::new(TaskSlab::default()),
                live_tasks: Cell::new(0),
                polls: Cell::new(0),
                timer_fires: Cell::new(0),
                tie_shuffle: RefCell::new(None),
            }),
        }
    }

    /// Enables schedule-perturbation mode: timers registered from now on
    /// get a seeded random tie-break that decides firing order among
    /// *equal* deadlines (unequal deadlines still fire in time order).
    ///
    /// The determinism contract promises that nothing observable depends
    /// on the FIFO order of same-instant timers — actors that collide at
    /// one instant must be logically independent. This mode is the
    /// runtime sanitizer for that claim: run the same seed under several
    /// shuffle seeds and assert the `Tracer::digest` is invariant. A
    /// digest change pinpoints a hidden same-timestamp ordering
    /// dependency — a race no token-level or call-graph rule can see.
    ///
    /// The shuffle stream is internal to the executor and consumes no
    /// draws from any workload stream, so enabling it never perturbs
    /// workload randomness.
    pub fn set_tie_shuffle(&self, seed: u64) {
        *self.core.tie_shuffle.borrow_mut() =
            Some(SimRng::stream(seed, "executor-tie-shuffle"));
    }

    /// Creates a simulation with tie-shuffle mode enabled from t=0.
    pub fn with_tie_shuffle(seed: u64) -> Self {
        let sim = Sim::new();
        sim.set_tie_shuffle(seed);
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Spawns an async task; it becomes runnable immediately.
    ///
    /// Returns a [`JoinHandle`] that resolves to the task's output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState { result: None, waker: None }));
        let state2 = Rc::clone(&state);
        self.spawn_boxed(Box::pin(async move {
            let out = fut.await;
            let mut s = state2.borrow_mut();
            s.result = Some(out);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        }));
        JoinHandle { state }
    }

    /// Spawns a fire-and-forget task: no [`JoinHandle`], so nothing is
    /// allocated beyond the boxed future itself. The per-task actors the
    /// fabrics launch (delivery legs, result returns, watchdogs) never
    /// join their children — this is their hot path.
    pub fn spawn_detached<F>(&self, fut: F)
    where
        F: Future<Output = ()> + 'static,
    {
        self.spawn_boxed(Box::pin(fut));
    }

    fn spawn_boxed(&self, wrapped: LocalFuture) {
        let id = {
            let mut tasks = self.core.tasks.borrow_mut();
            match tasks.free.pop() {
                Some(idx) => {
                    let gen = tasks.slots[idx as usize].gen;
                    let id = pack_task(idx, gen);
                    let slot = &mut tasks.slots[idx as usize];
                    slot.fut = Some(wrapped);
                    // Strong count 2 = exactly {slot.waker_arc, slot.waker}:
                    // no clone of the previous tenant's waker survives, so
                    // rewriting the id in place cannot misdirect a stale
                    // wake and the allocation is reused as-is. Any larger
                    // count means an old clone is still out there (parked
                    // in a timer or channel); it must keep waking the old
                    // id, so the new tenant gets a fresh allocation.
                    if Arc::strong_count(&slot.waker_arc) == 2 {
                        slot.waker_arc.id.store(id, Ordering::Relaxed);
                    } else {
                        let arc = Arc::new(TaskWaker {
                            id: AtomicU64::new(id),
                            ready: Arc::clone(&self.core.ready),
                        });
                        slot.waker = Waker::from(Arc::clone(&arc));
                        slot.waker_arc = arc;
                    }
                    id
                }
                None => {
                    let idx = tasks.slots.len() as u32;
                    let id = pack_task(idx, 0);
                    let arc = Arc::new(TaskWaker {
                        id: AtomicU64::new(id),
                        ready: Arc::clone(&self.core.ready),
                    });
                    tasks.slots.push(TaskSlot {
                        gen: 0,
                        fut: Some(wrapped),
                        waker: Waker::from(Arc::clone(&arc)),
                        waker_arc: arc,
                    });
                    id
                }
            }
        };
        self.core.live_tasks.set(self.core.live_tasks.get() + 1);
        self.core.ready.push(id);
    }

    /// Returns a future that completes after `d` of virtual time.
    pub fn sleep(&self, d: Duration) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now() + d,
            handle: None,
        }
    }

    /// Returns a future that completes at the absolute instant `at`
    /// (immediately if `at` is in the past).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep { sim: self.clone(), deadline: at, handle: None }
    }

    /// Yields once, letting every currently runnable task proceed before
    /// this one resumes (at the same instant).
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { sim: self.clone(), polled: false }
    }

    /// Registers a timer and arms its waker in a single pass over the
    /// wheel — the sleep hot path calls this once per await instead of
    /// borrowing the timer store twice.
    fn register_timer_with(&self, at: SimTime, waker: Waker) -> TimerHandle {
        let seq = self.core.next_timer_seq.get();
        self.core.next_timer_seq.set(seq + 1);
        let tie = match self.core.tie_shuffle.borrow_mut().as_mut() {
            Some(rng) => rng.next_u64(),
            None => 0,
        };
        let mut timers = self.core.timers.borrow_mut();
        let h = timers.register(at.as_nanos(), tie, seq);
        timers.set_waker(h, waker);
        h
    }

    /// Polls every runnable task until none is runnable at the current
    /// instant. Does not advance the clock. Returns the number of polls.
    fn drain_ready(&self) -> u64 {
        let mut polls = 0;
        while let Some(id) = self.core.ready.pop() {
            let (idx, gen) = unpack_task(id);
            // Take the future out of its slot while polling so the slab
            // is free for re-entrant spawns; clone the cached waker (an
            // Arc refcount bump, not an allocation).
            let (mut fut, waker) = {
                let mut tasks = self.core.tasks.borrow_mut();
                let Some(slot) = tasks.slots.get_mut(idx as usize) else {
                    continue;
                };
                if slot.gen != gen {
                    continue; // completed task woken again: spurious, ignore
                }
                let Some(fut) = slot.fut.take() else {
                    continue; // woken while already being polled
                };
                (fut, slot.waker.clone())
            };
            let mut cx = Context::from_waker(&waker);
            polls += 1;
            self.core.polls.set(self.core.polls.get() + 1);
            if fut.as_mut().poll(&mut cx).is_pending() {
                let mut tasks = self.core.tasks.borrow_mut();
                tasks.slots[idx as usize].fut = Some(fut);
            } else {
                {
                    let mut tasks = self.core.tasks.borrow_mut();
                    let slot = &mut tasks.slots[idx as usize];
                    slot.gen = slot.gen.wrapping_add(1);
                    tasks.free.push(idx);
                }
                self.core.live_tasks.set(self.core.live_tasks.get() - 1);
                // `fut` drops here, after the slab borrow is released:
                // destructors (e.g. `Sleep::drop`) may re-enter the core.
            }
        }
        polls
    }

    /// Fires the earliest pending timer, advancing the clock to it.
    /// Returns false when no live timer remains.
    fn fire_next_timer(&self) -> bool {
        let fired = self.core.timers.borrow_mut().pop();
        let Some(f) = fired else { return false };
        let at = SimTime::from_nanos(f.at);
        debug_assert!(at >= self.core.now.get(), "time went backwards");
        self.core.now.set(at);
        self.core.timer_fires.set(self.core.timer_fires.get() + 1);
        if let Some(w) = f.waker {
            w.wake();
        }
        true
    }

    /// Peeks at the deadline of the earliest live timer.
    fn next_deadline(&self) -> Option<SimTime> {
        self.core.timers.borrow_mut().peek().map(SimTime::from_nanos)
    }

    /// Runs until no task is runnable and no timer is pending
    /// (quiescence).
    pub fn run(&self) -> RunReport {
        loop {
            self.drain_ready();
            if !self.fire_next_timer() {
                break;
            }
        }
        self.report()
    }

    /// Runs until quiescence or until the clock would pass `deadline`;
    /// in the latter case the clock is left exactly at `deadline`.
    pub fn run_until(&self, deadline: SimTime) -> RunReport {
        loop {
            self.drain_ready();
            match self.next_deadline() {
                Some(at) if at <= deadline => {
                    self.fire_next_timer();
                }
                _ => break,
            }
        }
        if self.core.now.get() < deadline {
            self.core.now.set(deadline);
        }
        self.report()
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&self, d: Duration) -> RunReport {
        self.run_until(self.now() + d)
    }

    /// Drives the simulation until `handle` completes, then returns its
    /// output. Panics if the simulation goes quiescent first (the awaited
    /// task would then never finish).
    pub fn block_on<T: 'static>(&self, handle: JoinHandle<T>) -> T {
        loop {
            if let Some(v) = handle.try_take() {
                return v;
            }
            self.drain_ready();
            if let Some(v) = handle.try_take() {
                return v;
            }
            if !self.fire_next_timer() {
                // hetlint: allow(r5) — executor deadlock detection must abort: the sim itself is wedged
                panic!(
                    "simulation quiescent at {} with awaited task incomplete \
                     ({} tasks leaked)",
                    self.now(),
                    self.core.live_tasks.get()
                );
            }
        }
    }

    fn report(&self) -> RunReport {
        RunReport {
            end: self.now(),
            polls: self.core.polls.get(),
            timer_fires: self.core.timer_fires.get(),
            pending_tasks: self.core.live_tasks.get(),
        }
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Handle to a spawned task's output.
///
/// Await it from another task, or pass it to [`Sim::block_on`] from
/// outside the simulation.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Takes the output if the task has finished.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// True once the task has finished (and the output not yet taken).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let Some(v) = s.result.take() {
            Poll::Ready(v)
        } else {
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    handle: Option<TimerHandle>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if let Some(h) = self.handle {
            let mut timers = self.sim.core.timers.borrow_mut();
            return if timers.is_fired(h) {
                // Release in the same borrow the fired-check took, so
                // the common completed-sleep path touches the timer
                // store once and `Drop` has nothing left to do.
                timers.release(h);
                drop(timers);
                self.handle = None;
                Poll::Ready(())
            } else {
                timers.set_waker(h, cx.waker().clone());
                Poll::Pending
            };
        }
        if self.deadline <= self.sim.now() {
            return Poll::Ready(());
        }
        let h = self.sim.register_timer_with(self.deadline, cx.waker().clone());
        self.handle = Some(h);
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        // Eagerly cancel so an abandoned sleep (e.g. the losing arm of a
        // select) neither fires a stale waker nor advances the clock —
        // and its wheel entry is removed rather than left as a tombstone.
        if let Some(h) = self.handle.take() {
            self.sim.core.timers.borrow_mut().release(h);
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    sim: Sim,
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let _ = &self.sim;
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn empty_sim_quiesces_at_zero() {
        let sim = Sim::new();
        let r = sim.run();
        assert_eq!(r.end, SimTime::ZERO);
        assert_eq!(r.pending_tasks, 0);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1.5)).await;
            assert_eq!(s.now(), SimTime::from_millis(1500));
        });
        let r = sim.run();
        assert_eq!(r.end, SimTime::from_millis(1500));
        assert_eq!(r.pending_tasks, 0);
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            s.sleep(secs(2.0)).await;
            s.now()
        });
        let end = sim.block_on(h);
        assert_eq!(end, SimTime::from_secs(3));
    }

    #[test]
    fn concurrent_tasks_interleave_by_time() {
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<(&str, SimTime)>>> = Rc::default();
        for (name, delay) in [("b", 2.0), ("a", 1.0), ("c", 3.0)] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(secs(delay)).await;
                log.borrow_mut().push((name, s.now()));
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(
            log.as_slice(),
            &[
                ("a", SimTime::from_secs(1)),
                ("b", SimTime::from_secs(2)),
                ("c", SimTime::from_secs(3))
            ]
        );
    }

    #[test]
    fn same_deadline_fires_in_registration_order() {
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<u32>>> = Rc::default();
        for i in 0..5u32 {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(secs(1.0)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(log.borrow().as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(Duration::ZERO).await;
            s.now()
        });
        assert_eq!(sim.block_on(h), SimTime::ZERO);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            42u32
        });
        assert_eq!(sim.block_on(h), 42);
    }

    #[test]
    fn join_handle_awaitable_from_other_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let inner = sim.spawn(async move {
            s.sleep(secs(2.0)).await;
            7u32
        });
        let s2 = sim.clone();
        let outer = sim.spawn(async move {
            let v = inner.await;
            (v, s2.now())
        });
        let (v, t) = sim.block_on(outer);
        assert_eq!(v, 7);
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn nested_spawn_runs() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let s2 = s.clone();
            let child = s.spawn(async move {
                s2.sleep(secs(1.0)).await;
                "child done"
            });
            child.await
        });
        assert_eq!(sim.block_on(h), "child done");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new();
        let s = sim.clone();
        let done = Rc::new(Cell::new(false));
        let done2 = Rc::clone(&done);
        sim.spawn(async move {
            s.sleep(secs(10.0)).await;
            done2.set(true);
        });
        let r = sim.run_until(SimTime::from_secs(5));
        assert_eq!(r.end, SimTime::from_secs(5));
        assert!(!done.get());
        assert_eq!(r.pending_tasks, 1);
        // Continue to completion.
        let r = sim.run();
        assert_eq!(r.end, SimTime::from_secs(10));
        assert!(done.get());
    }

    #[test]
    fn run_until_with_no_timers_jumps_clock() {
        let sim = Sim::new();
        let r = sim.run_until(SimTime::from_secs(9));
        assert_eq!(r.end, SimTime::from_secs(9));
    }

    #[test]
    fn run_for_is_relative() {
        let sim = Sim::new();
        sim.run_for(secs(2.0));
        sim.run_for(secs(3.0));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn yield_now_lets_peers_run_at_same_instant() {
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<&str>>> = Rc::default();
        let s = sim.clone();
        let l1 = Rc::clone(&log);
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            s.yield_now().await;
            l1.borrow_mut().push("a2");
        });
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
        });
        let r = sim.run();
        assert_eq!(log.borrow().as_slice(), &["a1", "b1", "a2"]);
        assert_eq!(r.end, SimTime::ZERO);
    }

    #[test]
    fn dropped_sleep_does_not_advance_clock() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            let long = s.sleep(secs(100.0));
            drop(long); // e.g. losing select arm
            s.sleep(secs(1.0)).await;
        });
        let r = sim.run();
        assert_eq!(r.end, SimTime::from_secs(1));
    }

    #[test]
    fn many_tasks_deterministic() {
        let run = || {
            let sim = Sim::new();
            let acc: Rc<StdRefCell<Vec<u64>>> = Rc::default();
            for i in 0..200u64 {
                let s = sim.clone();
                let acc = Rc::clone(&acc);
                sim.spawn(async move {
                    s.sleep(secs(((i * 37) % 17) as f64 * 0.1)).await;
                    acc.borrow_mut().push(i);
                });
            }
            sim.run();
            let order = acc.borrow().clone();
            order
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "quiescent")]
    fn block_on_panics_on_deadlock() {
        let sim = Sim::new();
        // A task that waits on a JoinHandle that can never complete
        // because nothing drives the inner future.
        let (never, _keep) = {
            let inner: JoinHandle<()> = JoinHandle {
                state: Rc::new(RefCell::new(JoinState { result: None, waker: None })),
            };
            (inner, ())
        };
        let h = sim.spawn(never);
        sim.block_on(h);
    }

    #[test]
    fn report_counts_polls_and_timers() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..3 {
                s.sleep(secs(1.0)).await;
            }
        });
        let r = sim.run();
        assert_eq!(r.timer_fires, 3);
        assert!(r.polls >= 4);
    }

    /// Spawns `n` tasks that all sleep until the same instant and
    /// records the order their timers fire in.
    fn equal_deadline_order(shuffle: Option<u64>) -> Vec<u64> {
        let sim = match shuffle {
            Some(seed) => Sim::with_tie_shuffle(seed),
            None => Sim::new(),
        };
        let acc: Rc<StdRefCell<Vec<u64>>> = Rc::default();
        for i in 0..16u64 {
            let s = sim.clone();
            let acc = Rc::clone(&acc);
            sim.spawn(async move {
                s.sleep(secs(5.0)).await;
                acc.borrow_mut().push(i);
            });
        }
        sim.run();
        let order = acc.borrow().clone();
        order
    }

    #[test]
    fn tie_shuffle_perturbs_equal_deadlines_deterministically() {
        let fifo = equal_deadline_order(None);
        assert_eq!(fifo, (0..16).collect::<Vec<_>>(), "default mode is FIFO");
        let a = equal_deadline_order(Some(7));
        assert_eq!(a, equal_deadline_order(Some(7)), "same shuffle seed replays");
        assert_ne!(a, fifo, "shuffle should perturb same-instant order");
        assert_ne!(a, equal_deadline_order(Some(8)), "seeds should differ");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "a permutation, no loss");
    }

    #[test]
    fn tie_shuffle_preserves_time_order_across_deadlines() {
        let sim = Sim::with_tie_shuffle(3);
        let acc: Rc<StdRefCell<Vec<u64>>> = Rc::default();
        for i in 0..10u64 {
            let s = sim.clone();
            let acc = Rc::clone(&acc);
            sim.spawn(async move {
                s.sleep(secs((10 - i) as f64)).await;
                acc.borrow_mut().push(i);
            });
        }
        sim.run();
        // Distinct deadlines: the shuffle never reorders across time.
        assert_eq!(acc.borrow().clone(), (0..10u64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn short_sleep_after_truncated_run_lands_behind_cursor() {
        // run_until peeks the far timer (cascading the wheel cursor up to
        // its deadline), then truncates the clock below the cursor. The
        // short sleep registered afterwards must take the backlog path
        // and still fire first, in order.
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1000.0)).await;
        });
        sim.run_until(SimTime::from_secs(5));
        let log: Rc<StdRefCell<Vec<&str>>> = Rc::default();
        for (name, d) in [("near", 1.0), ("nearer", 0.5)] {
            let s = sim.clone();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                s.sleep(secs(d)).await;
                log.borrow_mut().push(name);
            });
        }
        let r = sim.run();
        assert_eq!(log.borrow().as_slice(), &["nearer", "near"]);
        assert_eq!(r.end, SimTime::from_secs(1000));
    }

    #[test]
    fn task_slot_reuse_ignores_stale_wakes() {
        // Complete a task, then spawn enough new ones to recycle its
        // slot; a stale waker for the finished task must not poll the
        // newcomer (generation mismatch).
        let sim = Sim::new();
        let h = sim.spawn(async {});
        sim.run();
        assert!(h.is_finished());
        let s = sim.clone();
        let h2 = sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            11u32
        });
        // Stale id: index 0, generation 0 (the finished task).
        sim.core.ready.push(pack_task(0, 0));
        assert_eq!(sim.block_on(h2), 11);
    }

    // -----------------------------------------------------------------
    // Property test: the wheel fires in exactly the order a binary-heap
    // reference does, under random insert/cancel/pop/peek scripts.
    // -----------------------------------------------------------------

    /// The old timer store, reduced to its essence: a min-heap of
    /// `(at, tie, seq)` with lazy cancellation.
    #[derive(Default)]
    struct HeapRef {
        heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
        cancelled: std::collections::HashSet<u64>,
    }

    impl HeapRef {
        fn insert(&mut self, at: u64, tie: u64, seq: u64) {
            self.heap.push(Reverse((at, tie, seq)));
        }
        fn cancel(&mut self, seq: u64) {
            self.cancelled.insert(seq);
        }
        fn peek(&mut self) -> Option<u64> {
            while let Some(&Reverse((at, _, seq))) = self.heap.peek() {
                if self.cancelled.contains(&seq) {
                    self.heap.pop();
                } else {
                    return Some(at);
                }
            }
            None
        }
        fn pop(&mut self) -> Option<(u64, u64, u64)> {
            while let Some(Reverse((at, tie, seq))) = self.heap.pop() {
                if !self.cancelled.contains(&seq) {
                    return Some((at, tie, seq));
                }
            }
            None
        }
    }

    fn wheel_matches_heap_script(seed: u64, shuffled_ties: bool) {
        let mut rng = SimRng::from_seed(seed);
        let mut wheel = TimerWheel::default();
        let mut reference = HeapRef::default();
        // seq -> handle, for cancels and post-pop release.
        let mut live: Vec<(u64, TimerHandle)> = Vec::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..4000 {
            match rng.next_u64() % 100 {
                0..=54 => {
                    // Insert with deltas spread across every wheel level.
                    let span = rng.next_u64() % 38;
                    let delta = 1 + (rng.next_u64() % (1u64 << span));
                    let at = now.saturating_add(delta);
                    let tie = if shuffled_ties { rng.next_u64() } else { 0 };
                    let h = wheel.register(at, tie, seq);
                    reference.insert(at, tie, seq);
                    live.push((seq, h));
                    seq += 1;
                }
                55..=69 => {
                    if !live.is_empty() {
                        let i = (rng.next_u64() % live.len() as u64) as usize;
                        let (s, h) = live.swap_remove(i);
                        wheel.release(h);
                        reference.cancel(s);
                    }
                }
                70..=89 => {
                    let got = wheel.pop().map(|f| (f.at, f.tie, f.seq));
                    let want = reference.pop();
                    assert_eq!(got, want, "pop diverged (seed {seed})");
                    if let Some((_, _, s)) = got {
                        now = got.map(|(at, ..)| at).unwrap_or(now);
                        if let Some(i) = live.iter().position(|&(ls, _)| ls == s) {
                            let (_, h) = live.swap_remove(i);
                            wheel.release(h); // the Sleep dropping post-fire
                        }
                    }
                }
                _ => {
                    assert_eq!(wheel.peek(), reference.peek(), "peek diverged (seed {seed})");
                }
            }
        }
        // Drain what's left: order must match to the end.
        loop {
            let got = wheel.pop().map(|f| (f.at, f.tie, f.seq));
            let want = reference.pop();
            assert_eq!(got, want, "drain diverged (seed {seed})");
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_pops_in_heap_order_fifo_ties() {
        for seed in [1u64, 2, 3, 42, 2026] {
            wheel_matches_heap_script(seed, false);
        }
    }

    #[test]
    fn wheel_pops_in_heap_order_shuffled_ties() {
        for seed in [5u64, 6, 7, 99, 517] {
            wheel_matches_heap_script(seed, true);
        }
    }

    #[test]
    fn wheel_handles_extreme_deadlines() {
        let mut wheel = TimerWheel::default();
        let far = wheel.register(u64::MAX, 0, 0);
        let near = wheel.register(1, 0, 1);
        assert_eq!(wheel.peek(), Some(1));
        let f = wheel.pop().map(|f| f.at);
        assert_eq!(f, Some(1));
        wheel.release(near);
        assert_eq!(wheel.pop().map(|f| f.at), Some(u64::MAX));
        wheel.release(far);
        assert_eq!(wheel.pop().map(|f| f.at), None);
    }
}
