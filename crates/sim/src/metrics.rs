//! Measurement containers used by every experiment harness.
//!
//! The paper reports medians, means, percentile error bars (40th/60th in
//! Fig. 6b), and utilization-over-time traces (Fig. 1). [`Samples`] covers
//! the scalar statistics; [`TimeSeries`] and [`Gauge`] cover the traces.

use crate::time::SimTime;

/// A bag of scalar samples with order statistics.
///
/// Stores raw values; quantiles sort a copy on demand, which is cheap at
/// the sample counts used here (≤ a few hundred thousand per figure cell).
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Non-finite values are rejected loudly:
    /// they always indicate a broken cost model.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite sample {v}");
        self.values.push(v);
    }

    /// Records a duration in seconds.
    pub fn record_secs(&mut self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation; 0 when fewer than 2 samples.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.values.len() as f64)
            .sqrt()
    }

    /// Standard error of the mean; 0 when fewer than 2 samples.
    pub fn std_err(&self) -> f64 {
        if self.values.len() < 2 {
            0.0
        } else {
            self.std_dev() / (self.values.len() as f64).sqrt()
        }
    }

    /// Quantile by linear interpolation between order statistics;
    /// `q` in `[0, 1]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.quantiles(&[q])[0]
    }

    /// Several quantiles at once, sorting the samples a single time —
    /// use this instead of repeated [`quantile`](Samples::quantile)
    /// calls when printing percentile error bars. Each `q` is clamped
    /// to `[0, 1]`; all results are 0 when empty.
    ///
    /// A NaN `q` is a caller bug (reliability hedging derives its cut
    /// points from config arithmetic): it trips a debug assertion, and
    /// in release builds falls back to the median rather than silently
    /// returning the minimum (NaN survives `clamp` and floors to index
    /// 0). Samples themselves are guaranteed finite by
    /// [`record`](Samples::record).
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        if self.values.is_empty() {
            return vec![0.0; qs.len()];
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        debug_assert!(
            sorted[0].is_finite() && sorted[sorted.len() - 1].is_finite(),
            "non-finite sample slipped past record()"
        );
        qs.iter()
            .map(|q| {
                debug_assert!(!q.is_nan(), "quantile q must be a number");
                let q = if q.is_nan() { 0.5 } else { q.clamp(0.0, 1.0) };
                let pos = q * (sorted.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                if lo == hi {
                    sorted[lo]
                } else {
                    let frac = pos - lo as f64;
                    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
                }
            })
            .collect()
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Fraction of samples strictly below `threshold`.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v < threshold).count() as f64 / self.values.len() as f64
    }

    /// Read-only view of the raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Merges another sample set into this one.
    pub fn extend_from(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
    }
}

/// A `(time, value)` series, e.g. cumulative bytes transferred (Fig. 1).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point; time must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be appended in time order");
        }
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value at time `t` under step (sample-and-hold) interpolation;
    /// `default` before the first point.
    pub fn value_at(&self, t: SimTime, default: f64) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => default,
            n => self.points[n - 1].1,
        }
    }

    /// Resamples onto a uniform grid of `n` points spanning
    /// `[SimTime::ZERO, end]` — used to print figure series compactly.
    pub fn resample(&self, end: SimTime, n: usize, default: f64) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two grid points");
        let end_s = end.as_secs_f64();
        (0..n)
            .map(|i| {
                let ts = end_s * i as f64 / (n - 1) as f64;
                (ts, self.value_at(SimTime::from_secs_f64(ts), default))
            })
            .collect()
    }
}

/// A level that steps up and down over time (e.g. "tasks running on the
/// GPU resource"), recorded as a full step series.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    level: f64,
    series: TimeSeries,
}

impl Gauge {
    /// Creates a gauge at level 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (may be negative) at time `t`.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        self.level += delta;
        self.series.push(t, self.level);
    }

    /// Increments by one.
    pub fn inc(&mut self, t: SimTime) {
        self.add(t, 1.0);
    }

    /// Decrements by one.
    pub fn dec(&mut self, t: SimTime) {
        self.add(t, -1.0);
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The underlying step series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Time-weighted average level over `[SimTime::ZERO, end]`.
    pub fn time_average(&self, end: SimTime) -> f64 {
        let pts = self.series.points();
        if pts.is_empty() {
            return 0.0;
        }
        let mut area = 0.0;
        let mut prev_t = SimTime::ZERO;
        let mut prev_v = 0.0;
        for &(t, v) in pts {
            if t > end {
                break;
            }
            area += prev_v * (t - prev_t).as_secs_f64();
            prev_t = t;
            prev_v = v;
        }
        area += prev_v * (end - prev_t).as_secs_f64();
        let total = end.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            area / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_basic_stats() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(v);
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.median() - 3.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.quantile(0.9), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_rejected() {
        let mut s = Samples::new();
        s.record(f64::NAN);
    }

    #[test]
    fn quantile_interpolates() {
        let mut s = Samples::new();
        for v in [0.0, 10.0] {
            s.record(v);
        }
        assert!((s.quantile(0.25) - 2.5).abs() < 1e-12);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 10.0);
    }

    #[test]
    fn percentile_order_is_monotone() {
        let mut s = Samples::new();
        for i in 0..100 {
            s.record((i * 7 % 100) as f64);
        }
        let q40 = s.quantile(0.4);
        let q50 = s.quantile(0.5);
        let q60 = s.quantile(0.6);
        assert!(q40 <= q50 && q50 <= q60);
    }

    #[test]
    fn quantiles_batch_matches_singles() {
        let mut s = Samples::new();
        for i in 0..100 {
            s.record((i * 13 % 100) as f64);
        }
        let qs = [0.0, 0.25, 0.4, 0.5, 0.6, 0.75, 1.0];
        let batch = s.quantiles(&qs);
        for (&q, &b) in qs.iter().zip(&batch) {
            assert_eq!(b, s.quantile(q), "q={q}");
        }
        assert_eq!(Samples::new().quantiles(&qs), vec![0.0; qs.len()]);
    }

    #[test]
    fn quantiles_edge_cases() {
        // Empty: every q, even out-of-range ones, yields 0.
        assert_eq!(Samples::new().quantiles(&[0.0, 0.5, 1.0, -3.0, 7.0]), vec![0.0; 5]);
        // Single sample: every q collapses to it.
        let mut one = Samples::new();
        one.record(42.0);
        assert_eq!(one.quantiles(&[0.0, 0.3, 1.0]), vec![42.0; 3]);
        // q = 1.0 exactly hits the max without indexing past the end.
        let mut s = Samples::new();
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.quantile(1.0), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
    }

    #[test]
    fn quantiles_clamp_out_of_range_q() {
        let mut s = Samples::new();
        for v in [5.0, 10.0, 15.0] {
            s.record(v);
        }
        assert_eq!(s.quantile(-0.5), 5.0, "q < 0 clamps to the min");
        assert_eq!(s.quantile(1.5), 15.0, "q > 1 clamps to the max");
        assert_eq!(s.quantile(f64::NEG_INFINITY), 5.0);
        assert_eq!(s.quantile(f64::INFINITY), 15.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "quantile q must be a number"))]
    fn quantiles_reject_nan_q() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0] {
            s.record(v);
        }
        // Debug builds assert; release builds fall back to the median
        // instead of silently returning the minimum.
        assert_eq!(s.quantile(f64::NAN), 2.0);
    }

    #[test]
    fn fraction_below_counts() {
        let mut s = Samples::new();
        for v in [0.05, 0.09, 0.2, 0.5] {
            s.record(v);
        }
        assert!((s.fraction_below(0.1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn extend_from_merges() {
        let mut a = Samples::new();
        a.record(1.0);
        let mut b = Samples::new();
        b.record(3.0);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn series_step_lookup() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(5), 20.0);
        assert_eq!(ts.value_at(SimTime::ZERO, -1.0), -1.0);
        assert_eq!(ts.value_at(SimTime::from_secs(1), -1.0), 10.0);
        assert_eq!(ts.value_at(SimTime::from_secs(3), -1.0), 10.0);
        assert_eq!(ts.value_at(SimTime::from_secs(9), -1.0), 20.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn series_rejects_time_regression() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(5), 1.0);
        ts.push(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn series_resample_grid() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 0.0);
        ts.push(SimTime::from_secs(10), 100.0);
        let grid = ts.resample(SimTime::from_secs(10), 3, 0.0);
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0], (0.0, 0.0));
        assert_eq!(grid[1], (5.0, 0.0));
        assert_eq!(grid[2], (10.0, 100.0));
    }

    #[test]
    fn gauge_tracks_level_and_average() {
        let mut g = Gauge::new();
        g.inc(SimTime::from_secs(0));
        g.inc(SimTime::from_secs(2));
        g.dec(SimTime::from_secs(4));
        assert_eq!(g.level(), 1.0);
        // Level: 1 on [0,2), 2 on [2,4), 1 on [4,8) => (2+4+4)/8 = 1.25
        let avg = g.time_average(SimTime::from_secs(8));
        assert!((avg - 1.25).abs() < 1e-12, "avg {avg}");
    }

    #[test]
    fn gauge_time_average_empty() {
        let g = Gauge::new();
        assert_eq!(g.time_average(SimTime::from_secs(5)), 0.0);
    }
}
