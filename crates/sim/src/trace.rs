//! Structured trace of simulation activity.
//!
//! Actors append [`TraceEvent`]s to a shared [`Tracer`]; figure harnesses
//! replay the trace to compute utilization series and latency breakdowns.
//! Tracing is optional and cheap: a disabled tracer drops events.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// One trace record: what happened, where, when, and to which entity.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// When the event occurred.
    pub t: SimTime,
    /// The emitting component, e.g. `"worker/theta/3"`.
    pub actor: String,
    /// Event kind, e.g. `"task_started"`.
    pub kind: &'static str,
    /// Entity id the event concerns (task id, transfer id, …).
    pub entity: u64,
    /// Optional numeric payload (bytes, durations in seconds, …).
    pub value: f64,
}

#[derive(Default)]
struct TracerState {
    events: Vec<TraceEvent>,
    enabled: bool,
}

/// Shared, clonable event sink.
#[derive(Clone, Default)]
pub struct Tracer {
    state: Rc<RefCell<TracerState>>,
}

impl Tracer {
    /// Creates a tracer that records events.
    pub fn enabled() -> Self {
        let t = Tracer::default();
        t.state.borrow_mut().enabled = true;
        t
    }

    /// Creates a tracer that drops events.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Records an event (no-op when disabled).
    pub fn emit(&self, t: SimTime, actor: &str, kind: &'static str, entity: u64, value: f64) {
        let mut s = self.state.borrow_mut();
        if s.enabled {
            s.events.push(TraceEvent { t, actor: actor.to_owned(), kind, entity, value });
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.borrow().events.clone()
    }

    /// Snapshot filtered by event kind.
    pub fn events_of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        self.state
            .borrow()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Clears the recorded events.
    pub fn clear(&self) {
        self.state.borrow_mut().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_drops() {
        let t = Tracer::disabled();
        t.emit(SimTime::ZERO, "a", "x", 1, 0.0);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let t = Tracer::enabled();
        t.emit(SimTime::from_secs(1), "a", "start", 1, 0.0);
        t.emit(SimTime::from_secs(2), "a", "stop", 1, 5.0);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, "start");
        assert_eq!(ev[1].value, 5.0);
    }

    #[test]
    fn filter_by_kind() {
        let t = Tracer::enabled();
        t.emit(SimTime::ZERO, "a", "start", 1, 0.0);
        t.emit(SimTime::ZERO, "b", "stop", 1, 0.0);
        t.emit(SimTime::ZERO, "c", "start", 2, 0.0);
        assert_eq!(t.events_of_kind("start").len(), 2);
        assert_eq!(t.events_of_kind("stop").len(), 1);
        assert_eq!(t.events_of_kind("nope").len(), 0);
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t2.emit(SimTime::ZERO, "a", "x", 1, 0.0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t2.is_empty());
    }
}
