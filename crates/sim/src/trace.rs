//! Structured trace of simulation activity.
//!
//! Actors append [`TraceEvent`]s to a shared [`Tracer`]; figure harnesses
//! replay the trace to compute utilization series and latency breakdowns.
//! Tracing is optional and cheap: a disabled tracer drops events, and an
//! enabled one allocates nothing per event — actors are interned
//! [`Symbol`]s and the determinism digest is folded *as events stream
//! through*, so retaining the event log is opt-in rather than the price
//! of reproducibility checking.

use crate::intern::Symbol;
use crate::time::SimTime;
use std::cell::{RefCell, RefMut};
use std::collections::VecDeque;
use std::rc::Rc;

/// Canonical event kinds emitted by the fabrics and the steering layer.
///
/// Using these constants (rather than ad-hoc string literals) keeps
/// producers and trace consumers in sync; the failure-path kinds
/// (`TASK_RETRY`, `TASK_FAILED`, `TASK_TIMEOUT`) are part of the
/// graceful-degradation contract: a fault emits a trace event and a
/// record, never a panic.
pub mod kinds {
    /// Thinker created a task.
    pub const TASK_CREATED: &str = "task_created";
    /// Worker began executing a task.
    pub const TASK_STARTED: &str = "task_started";
    /// A failed attempt; value = the attempt number about to run.
    pub const TASK_RETRY: &str = "task_retry";
    /// Worker finished a task successfully.
    pub const TASK_FINISHED: &str = "task_finished";
    /// Task failed terminally on the worker (exhausted retries,
    /// resolve/put error); travels the result path as a failed record.
    pub const TASK_FAILED: &str = "task_failed";
    /// Task missed its delivery deadline (e.g. stuck behind an
    /// endpoint outage) and was failed by the fabric.
    pub const TASK_TIMEOUT: &str = "task_timeout";
    /// Thinker received a result envelope.
    pub const RESULT_RECEIVED: &str = "result_received";
    /// An endpoint's circuit breaker tripped open: dispatches steer
    /// away until the cool-down elapses. Value = trip generation.
    pub const BREAKER_OPENED: &str = "breaker_opened";
    /// A half-open probe succeeded and the breaker closed again.
    /// Value = trip generation being retired.
    pub const BREAKER_CLOSED: &str = "breaker_closed";
    /// A straggling task was re-issued speculatively to another
    /// endpoint; first result wins. Value = the hedge copy number.
    pub const TASK_HEDGED: &str = "task_hedged";
    /// A duplicate (hedged/rerouted) task copy lost the race and was
    /// cancelled; its time is accounted as waste, never as a second
    /// terminal outcome. Value = seconds the loser burned.
    pub const TASK_CANCELLED: &str = "task_cancelled";
    /// A task whose delivery timed out was re-dispatched to a
    /// different endpoint instead of failing. Value = reroute count.
    pub const TASK_REROUTED: &str = "task_rerouted";
    /// A task was shed by overload protection — displaced from a full
    /// bounded queue or refused by the admission controller — and
    /// delivered as a `TaskOutcome::Shed` record. Value = the queue
    /// depth (or in-flight count) at the moment of shedding.
    pub const TASK_SHED: &str = "task_shed";
    /// A topic's queue depth crossed its high watermark: the submission
    /// gate closed and steer agents now await a permit. Entity = the
    /// topic's registration index, value = the depth that tripped it.
    pub const BACKPRESSURE_ON: &str = "backpressure_on";
    /// The depth drained to the low watermark and the gate reopened.
    /// Entity = the topic's registration index, value = the depth.
    pub const BACKPRESSURE_OFF: &str = "backpressure_off";
    /// Sustained overload (or open breakers) made an application drop
    /// to a cheaper fidelity tier (TTM-like oracle, smaller ensemble).
    /// Value = the degradation generation.
    pub const FIDELITY_DEGRADED: &str = "fidelity_degraded";
    /// Pressure cleared and full fidelity resumed. Value = the
    /// generation being retired.
    pub const FIDELITY_RESTORED: &str = "fidelity_restored";

    /// Every registered kind, in declaration order.
    ///
    /// hetlint (rule R8) cross-checks this module against every
    /// `emit(..)` site in the workspace — a kind emitted but not
    /// declared here, or declared here but never emitted, fails the
    /// static-analysis gate. The slice lets consumers (lifecycle
    /// accounting, figure harnesses) enumerate the registry without
    /// hand-maintained lists.
    pub const ALL: &[&str] = &[
        TASK_CREATED,
        TASK_STARTED,
        TASK_RETRY,
        TASK_FINISHED,
        TASK_FAILED,
        TASK_TIMEOUT,
        RESULT_RECEIVED,
        BREAKER_OPENED,
        BREAKER_CLOSED,
        TASK_HEDGED,
        TASK_CANCELLED,
        TASK_REROUTED,
        TASK_SHED,
        BACKPRESSURE_ON,
        BACKPRESSURE_OFF,
        FIDELITY_DEGRADED,
        FIDELITY_RESTORED,
    ];
}

/// One trace record: what happened, where, when, and to which entity.
///
/// `Copy`: the actor is an interned [`Symbol`], so events move by value
/// with no heap traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// When the event occurred.
    pub t: SimTime,
    /// The emitting component, e.g. `"worker/theta/3"`.
    pub actor: Symbol,
    /// Event kind, e.g. `"task_started"`.
    pub kind: &'static str,
    /// Entity id the event concerns (task id, transfer id, …).
    pub entity: u64,
    /// Optional numeric payload (bytes, durations in seconds, …).
    pub value: f64,
}

/// What an enabled tracer keeps in memory, beyond the streaming digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Retain {
    /// Nothing — digest and count only. The fast path for perf runs
    /// and digest-invariance sweeps.
    Nothing,
    /// The most recent `n` events, for tests that inspect the tail of
    /// a long run without paying for the whole log.
    Ring(usize),
    /// Every event, for figure harnesses that replay the full trace.
    All,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

struct TracerState {
    events: VecDeque<TraceEvent>,
    enabled: bool,
    retain: Retain,
    /// FNV-1a fold over every event ever emitted, updated at emit time.
    digest: u64,
    /// Events ever emitted (ring eviction does not decrement).
    emitted: usize,
}

impl Default for TracerState {
    fn default() -> Self {
        TracerState {
            events: VecDeque::new(),
            enabled: false,
            retain: Retain::All,
            digest: FNV_OFFSET,
            emitted: 0,
        }
    }
}

impl TracerState {
    #[inline]
    fn fold_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.digest;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.digest = h;
    }

    /// Folds one event into the digest. The byte recipe — time, actor
    /// bytes, 0xff, kind bytes, 0xff, entity, value bits — is pinned by
    /// the determinism suite and must never change: it is what makes
    /// digests comparable across kernel rewrites.
    #[inline]
    fn fold_event(&mut self, e: &TraceEvent) {
        self.fold_bytes(&e.t.as_nanos().to_le_bytes());
        self.fold_bytes(e.actor.as_str().as_bytes());
        self.fold_bytes(&[0xff]); // field separator: actor is variable-length
        self.fold_bytes(e.kind.as_bytes());
        self.fold_bytes(&[0xff]);
        self.fold_bytes(&e.entity.to_le_bytes());
        self.fold_bytes(&e.value.to_bits().to_le_bytes());
    }
}

/// Shared, clonable event sink.
#[derive(Clone, Default)]
pub struct Tracer {
    state: Rc<RefCell<TracerState>>,
}

impl Tracer {
    /// Creates a tracer that records every event (and streams the
    /// digest).
    pub fn enabled() -> Self {
        let t = Tracer::default();
        {
            let mut s = t.state.borrow_mut();
            s.enabled = true;
            s.retain = Retain::All;
        }
        t
    }

    /// Creates a tracer that folds the determinism digest but retains
    /// no events: [`Tracer::digest`] and [`Tracer::len`] work,
    /// [`Tracer::events`] stays empty. Constant memory regardless of
    /// run length — the right mode for perf baselines and digest
    /// sweeps.
    pub fn digest_only() -> Self {
        let t = Tracer::default();
        {
            let mut s = t.state.borrow_mut();
            s.enabled = true;
            s.retain = Retain::Nothing;
        }
        t
    }

    /// Creates a tracer that keeps only the most recent `capacity`
    /// events (the digest still covers all of them). For tests that
    /// assert on the tail of a long run.
    pub fn with_ring(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be >= 1");
        let t = Tracer::default();
        {
            let mut s = t.state.borrow_mut();
            s.enabled = true;
            s.retain = Retain::Ring(capacity);
        }
        t
    }

    /// Creates a tracer that drops events.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Records an event (no-op when disabled).
    ///
    /// `actor` takes anything convertible to a [`Symbol`]; hot paths
    /// pass a pre-interned `Symbol` (zero work), occasional emitters
    /// can still pass `&str`.
    pub fn emit(
        &self,
        t: SimTime,
        actor: impl Into<Symbol>,
        kind: &'static str,
        entity: u64,
        value: f64,
    ) {
        let mut s = self.state.borrow_mut();
        if !s.enabled {
            return;
        }
        let e = TraceEvent { t, actor: actor.into(), kind, entity, value };
        s.fold_event(&e);
        s.emitted += 1;
        match s.retain {
            Retain::Nothing => {}
            Retain::Ring(cap) => {
                if s.events.len() == cap {
                    s.events.pop_front();
                }
                s.events.push_back(e);
            }
            Retain::All => s.events.push_back(e),
        }
    }

    /// Number of events ever emitted (ring eviction does not lower it).
    pub fn len(&self) -> usize {
        self.state.borrow().emitted
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowed view of the retained events in emission order.
    ///
    /// This borrows the tracer's buffer instead of cloning it — do not
    /// hold the guard across an `emit` (same rule as any `RefCell`
    /// borrow). In ring mode this is the retained tail; in digest-only
    /// mode it is empty.
    pub fn events(&self) -> RefMut<'_, [TraceEvent]> {
        RefMut::map(self.state.borrow_mut(), |s| s.events.make_contiguous())
    }

    /// Snapshot filtered by event kind. Events are `Copy`, so this
    /// allocates one `Vec` of plain values and nothing per event.
    pub fn events_of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        self.state
            .borrow()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .copied()
            .collect()
    }

    /// Clears the recorded events and restarts the digest fold.
    pub fn clear(&self) {
        let mut s = self.state.borrow_mut();
        s.events.clear();
        s.digest = FNV_OFFSET;
        s.emitted = 0;
    }

    /// FNV-1a digest of the full event stream, in emission order.
    ///
    /// Folds every field of every event — time, actor, kind, entity,
    /// and the payload's exact bit pattern — so two traces share a
    /// digest only if they are bit-identical. This is the quantity the
    /// determinism regression suite compares across same-seed runs. The
    /// fold happens at emit time, so the digest covers every event ever
    /// emitted even in ring or digest-only mode.
    pub fn digest(&self) -> u64 {
        self.state.borrow().digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_drops() {
        let t = Tracer::disabled();
        t.emit(SimTime::ZERO, "a", "x", 1, 0.0);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let t = Tracer::enabled();
        t.emit(SimTime::from_secs(1), "a", "start", 1, 0.0);
        t.emit(SimTime::from_secs(2), "a", "stop", 1, 5.0);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, "start");
        assert_eq!(ev[1].value, 5.0);
    }

    #[test]
    fn events_returns_a_borrow_not_a_copy() {
        let t = Tracer::enabled();
        t.emit(SimTime::ZERO, "a", "x", 1, 0.0);
        let first = t.events().as_ptr();
        let second = t.events().as_ptr();
        assert_eq!(first, second, "same underlying buffer, no clone");
    }

    #[test]
    fn filter_by_kind() {
        let t = Tracer::enabled();
        t.emit(SimTime::ZERO, "a", "start", 1, 0.0);
        t.emit(SimTime::ZERO, "b", "stop", 1, 0.0);
        t.emit(SimTime::ZERO, "c", "start", 2, 0.0);
        assert_eq!(t.events_of_kind("start").len(), 2);
        assert_eq!(t.events_of_kind("stop").len(), 1);
        assert_eq!(t.events_of_kind("nope").len(), 0);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = Tracer::enabled();
        a.emit(SimTime::from_secs(1), "w", "start", 1, 0.5);
        a.emit(SimTime::from_secs(2), "w", "stop", 1, 0.0);
        let b = Tracer::enabled();
        b.emit(SimTime::from_secs(1), "w", "start", 1, 0.5);
        b.emit(SimTime::from_secs(2), "w", "stop", 1, 0.0);
        assert_eq!(a.digest(), b.digest());
        let c = Tracer::enabled();
        c.emit(SimTime::from_secs(2), "w", "stop", 1, 0.0);
        c.emit(SimTime::from_secs(1), "w", "start", 1, 0.5);
        assert_ne!(a.digest(), c.digest(), "order must matter");
        // Variable-length actor/kind fields must not alias.
        let d = Tracer::enabled();
        d.emit(SimTime::from_secs(1), "ws", "tart", 1, 0.5);
        d.emit(SimTime::from_secs(2), "w", "stop", 1, 0.0);
        assert_ne!(a.digest(), d.digest(), "field boundaries must matter");
    }

    #[test]
    fn streaming_digest_matches_retained_fold() {
        // The streaming fold must agree with the reference definition:
        // an explicit FNV-1a pass over the retained events.
        let t = Tracer::enabled();
        t.emit(SimTime::from_secs(1), "w/1", "start", 7, 0.25);
        t.emit(SimTime::from_millis(1500), "w/2", "stop", 7, -1.5);
        t.emit(SimTime::from_secs(2), "thinker", "start", 8, 0.0);
        let mut h: u64 = FNV_OFFSET;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for e in t.events().iter() {
            fold(&e.t.as_nanos().to_le_bytes());
            fold(e.actor.as_str().as_bytes());
            fold(&[0xff]);
            fold(e.kind.as_bytes());
            fold(&[0xff]);
            fold(&e.entity.to_le_bytes());
            fold(&e.value.to_bits().to_le_bytes());
        }
        assert_eq!(t.digest(), h);
    }

    #[test]
    fn digest_only_mode_retains_nothing_but_digests_everything() {
        let full = Tracer::enabled();
        let lean = Tracer::digest_only();
        for i in 0..50u64 {
            full.emit(SimTime::from_millis(i), "w", "start", i, 0.1);
            lean.emit(SimTime::from_millis(i), "w", "start", i, 0.1);
        }
        assert_eq!(lean.digest(), full.digest());
        assert_eq!(lean.len(), 50);
        assert!(lean.events().is_empty(), "digest-only retains no events");
    }

    #[test]
    fn ring_mode_keeps_the_tail_and_the_full_digest() {
        let full = Tracer::enabled();
        let ring = Tracer::with_ring(4);
        for i in 0..10u64 {
            full.emit(SimTime::from_millis(i), "w", "start", i, 0.0);
            ring.emit(SimTime::from_millis(i), "w", "start", i, 0.0);
        }
        assert_eq!(ring.len(), 10, "len counts everything emitted");
        let tail = ring.events();
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].entity, 6, "oldest retained is n-4");
        assert_eq!(tail[3].entity, 9);
        drop(tail);
        assert_eq!(ring.digest(), full.digest(), "digest covers evicted events");
    }

    #[test]
    fn kind_registry_is_unique_and_well_formed() {
        for (i, a) in kinds::ALL.iter().enumerate() {
            assert!(!a.is_empty());
            assert!(
                a.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "kind {a:?} must be snake_case"
            );
            for b in kinds::ALL.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate registered kind");
            }
        }
    }

    #[test]
    fn clear_resets_digest_and_count() {
        let t = Tracer::enabled();
        t.emit(SimTime::ZERO, "a", "x", 1, 0.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.digest(), Tracer::enabled().digest(), "digest restarts");
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t2.emit(SimTime::ZERO, "a", "x", 1, 0.0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t2.is_empty());
    }
}
