//! Structured trace of simulation activity.
//!
//! Actors append [`TraceEvent`]s to a shared [`Tracer`]; figure harnesses
//! replay the trace to compute utilization series and latency breakdowns.
//! Tracing is optional and cheap: a disabled tracer drops events.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Canonical event kinds emitted by the fabrics and the steering layer.
///
/// Using these constants (rather than ad-hoc string literals) keeps
/// producers and trace consumers in sync; the failure-path kinds
/// (`TASK_RETRY`, `TASK_FAILED`, `TASK_TIMEOUT`) are part of the
/// graceful-degradation contract: a fault emits a trace event and a
/// record, never a panic.
pub mod kinds {
    /// Thinker created a task.
    pub const TASK_CREATED: &str = "task_created";
    /// Worker began executing a task.
    pub const TASK_STARTED: &str = "task_started";
    /// A failed attempt; value = the attempt number about to run.
    pub const TASK_RETRY: &str = "task_retry";
    /// Worker finished a task successfully.
    pub const TASK_FINISHED: &str = "task_finished";
    /// Task failed terminally on the worker (exhausted retries,
    /// resolve/put error); travels the result path as a failed record.
    pub const TASK_FAILED: &str = "task_failed";
    /// Task missed its delivery deadline (e.g. stuck behind an
    /// endpoint outage) and was failed by the fabric.
    pub const TASK_TIMEOUT: &str = "task_timeout";
    /// Thinker received a result envelope.
    pub const RESULT_RECEIVED: &str = "result_received";
    /// An endpoint's circuit breaker tripped open: dispatches steer
    /// away until the cool-down elapses. Value = trip generation.
    pub const BREAKER_OPENED: &str = "breaker_opened";
    /// A half-open probe succeeded and the breaker closed again.
    /// Value = trip generation being retired.
    pub const BREAKER_CLOSED: &str = "breaker_closed";
    /// A straggling task was re-issued speculatively to another
    /// endpoint; first result wins. Value = the hedge copy number.
    pub const TASK_HEDGED: &str = "task_hedged";
    /// A duplicate (hedged/rerouted) task copy lost the race and was
    /// cancelled; its time is accounted as waste, never as a second
    /// terminal outcome. Value = seconds the loser burned.
    pub const TASK_CANCELLED: &str = "task_cancelled";
    /// A task whose delivery timed out was re-dispatched to a
    /// different endpoint instead of failing. Value = reroute count.
    pub const TASK_REROUTED: &str = "task_rerouted";

    /// Every registered kind, in declaration order.
    ///
    /// hetlint (rule R8) cross-checks this module against every
    /// `emit(..)` site in the workspace — a kind emitted but not
    /// declared here, or declared here but never emitted, fails the
    /// static-analysis gate. The slice lets consumers (lifecycle
    /// accounting, figure harnesses) enumerate the registry without
    /// hand-maintained lists.
    pub const ALL: &[&str] = &[
        TASK_CREATED,
        TASK_STARTED,
        TASK_RETRY,
        TASK_FINISHED,
        TASK_FAILED,
        TASK_TIMEOUT,
        RESULT_RECEIVED,
        BREAKER_OPENED,
        BREAKER_CLOSED,
        TASK_HEDGED,
        TASK_CANCELLED,
        TASK_REROUTED,
    ];
}

/// One trace record: what happened, where, when, and to which entity.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// When the event occurred.
    pub t: SimTime,
    /// The emitting component, e.g. `"worker/theta/3"`.
    pub actor: String,
    /// Event kind, e.g. `"task_started"`.
    pub kind: &'static str,
    /// Entity id the event concerns (task id, transfer id, …).
    pub entity: u64,
    /// Optional numeric payload (bytes, durations in seconds, …).
    pub value: f64,
}

#[derive(Default)]
struct TracerState {
    events: Vec<TraceEvent>,
    enabled: bool,
}

/// Shared, clonable event sink.
#[derive(Clone, Default)]
pub struct Tracer {
    state: Rc<RefCell<TracerState>>,
}

impl Tracer {
    /// Creates a tracer that records events.
    pub fn enabled() -> Self {
        let t = Tracer::default();
        t.state.borrow_mut().enabled = true;
        t
    }

    /// Creates a tracer that drops events.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.state.borrow().enabled
    }

    /// Records an event (no-op when disabled).
    pub fn emit(&self, t: SimTime, actor: &str, kind: &'static str, entity: u64, value: f64) {
        let mut s = self.state.borrow_mut();
        if s.enabled {
            s.events.push(TraceEvent { t, actor: actor.to_owned(), kind, entity, value });
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.borrow().events.clone()
    }

    /// Snapshot filtered by event kind.
    pub fn events_of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        self.state
            .borrow()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Clears the recorded events.
    pub fn clear(&self) {
        self.state.borrow_mut().events.clear();
    }

    /// FNV-1a digest of the full event stream, in emission order.
    ///
    /// Folds every field of every event — time, actor, kind, entity,
    /// and the payload's exact bit pattern — so two traces share a
    /// digest only if they are bit-identical. This is the quantity the
    /// determinism regression suite compares across same-seed runs.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for e in self.state.borrow().events.iter() {
            fold(&e.t.as_nanos().to_le_bytes());
            fold(e.actor.as_bytes());
            fold(&[0xff]); // field separator: actor is variable-length
            fold(e.kind.as_bytes());
            fold(&[0xff]);
            fold(&e.entity.to_le_bytes());
            fold(&e.value.to_bits().to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_drops() {
        let t = Tracer::disabled();
        t.emit(SimTime::ZERO, "a", "x", 1, 0.0);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let t = Tracer::enabled();
        t.emit(SimTime::from_secs(1), "a", "start", 1, 0.0);
        t.emit(SimTime::from_secs(2), "a", "stop", 1, 5.0);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, "start");
        assert_eq!(ev[1].value, 5.0);
    }

    #[test]
    fn filter_by_kind() {
        let t = Tracer::enabled();
        t.emit(SimTime::ZERO, "a", "start", 1, 0.0);
        t.emit(SimTime::ZERO, "b", "stop", 1, 0.0);
        t.emit(SimTime::ZERO, "c", "start", 2, 0.0);
        assert_eq!(t.events_of_kind("start").len(), 2);
        assert_eq!(t.events_of_kind("stop").len(), 1);
        assert_eq!(t.events_of_kind("nope").len(), 0);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = Tracer::enabled();
        a.emit(SimTime::from_secs(1), "w", "start", 1, 0.5);
        a.emit(SimTime::from_secs(2), "w", "stop", 1, 0.0);
        let b = Tracer::enabled();
        b.emit(SimTime::from_secs(1), "w", "start", 1, 0.5);
        b.emit(SimTime::from_secs(2), "w", "stop", 1, 0.0);
        assert_eq!(a.digest(), b.digest());
        let c = Tracer::enabled();
        c.emit(SimTime::from_secs(2), "w", "stop", 1, 0.0);
        c.emit(SimTime::from_secs(1), "w", "start", 1, 0.5);
        assert_ne!(a.digest(), c.digest(), "order must matter");
        // Variable-length actor/kind fields must not alias.
        let d = Tracer::enabled();
        d.emit(SimTime::from_secs(1), "ws", "tart", 1, 0.5);
        d.emit(SimTime::from_secs(2), "w", "stop", 1, 0.0);
        assert_ne!(a.digest(), d.digest(), "field boundaries must matter");
    }

    #[test]
    fn kind_registry_is_unique_and_well_formed() {
        for (i, a) in kinds::ALL.iter().enumerate() {
            assert!(!a.is_empty());
            assert!(
                a.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "kind {a:?} must be snake_case"
            );
            for b in kinds::ALL.iter().skip(i + 1) {
                assert_ne!(a, b, "duplicate registered kind");
            }
        }
    }

    #[test]
    fn clones_share_state() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        t2.emit(SimTime::ZERO, "a", "x", 1, 0.0);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t2.is_empty());
    }
}
