//! Interned names: topic, endpoint, actor, and RNG-stream strings as
//! cheap copyable keys.
//!
//! The hot paths of the simulator (trace emission, fabric dispatch,
//! per-result accounting) used to clone `String`s for every event. A
//! [`Symbol`] is a `Copy` handle to a string interned exactly once for
//! the life of the process: comparing symbols is an integer compare,
//! storing one allocates nothing, and resolving one back to `&str` is a
//! field read. The determinism contract is unaffected because every
//! digest and RNG-stream derivation folds the *resolved bytes*, never
//! the numeric id — interning order cannot leak into any observable.
//!
//! The interner is global and thread-safe (`Mutex` around a `BTreeMap`),
//! so symbols created on one thread compare correctly on another; the
//! lock is only taken when interning, never when resolving. Interned
//! strings are leaked — the name set is bounded (topics, endpoints,
//! worker labels), so the leak is a few kilobytes per process.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A `Copy` handle to an interned string.
///
/// Equality and hashing use the numeric id (valid because the global
/// interner deduplicates), while `Ord` compares the *resolved strings*:
/// a `BTreeMap<Symbol, _>` therefore iterates in exactly the order the
/// equivalent `BTreeMap<String, _>` would, which keeps every
/// map-iteration-ordered code path bit-identical to the pre-interning
/// tree.
#[derive(Clone, Copy)]
pub struct Symbol {
    id: u32,
    name: &'static str,
}

struct Interner {
    map: BTreeMap<&'static str, Symbol>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner { map: BTreeMap::new() }))
}

impl Symbol {
    /// Interns `name`, returning the canonical symbol for it.
    ///
    /// The first interning of a distinct string leaks one copy of it;
    /// subsequent calls are a lock plus a map lookup and allocate
    /// nothing.
    pub fn intern(name: &str) -> Symbol {
        let mut guard = interner()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(sym) = guard.map.get(name) {
            return *sym;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(guard.map.len()).unwrap_or(u32::MAX);
        let sym = Symbol { id, name: leaked };
        guard.map.insert(leaked, sym);
        sym
    }

    /// The interned string.
    #[inline]
    pub fn as_str(self) -> &'static str {
        self.name
    }

    /// The numeric key — stable for the life of the process, dense from
    /// zero in interning order. Useful as an array index for per-name
    /// counters; never fold it into a digest or a seed (use
    /// [`Symbol::as_str`] bytes, which are independent of interning
    /// order).
    #[inline]
    pub fn id(self) -> u32 {
        self.id
    }

    /// True when the interned string is empty.
    pub fn is_empty(self) -> bool {
        self.name.is_empty()
    }
}

/// The empty string, interned.
impl Default for Symbol {
    fn default() -> Self {
        Symbol::intern("")
    }
}

impl PartialEq for Symbol {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

// Ordered by resolved string, NOT by id — see the type-level docs.
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.name.cmp(other.name)
        }
    }
}
impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.name == other
    }
}
impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.name == *other
    }
}
impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.name == other.as_str()
    }
}
impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.name
    }
}
impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.name
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}
impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}
impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}
impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        *s
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.name, f)
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let a = Symbol::intern("intern-test-alpha");
        let b = Symbol::intern("intern-test-alpha");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "one leaked copy");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let a = Symbol::intern("intern-test-a");
        let b = Symbol::intern("intern-test-b");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn ord_matches_string_order() {
        // The property every BTreeMap<Symbol, _> iteration depends on.
        let mut names = vec!["zeta", "alpha", "mid/9", "mid/10", ""];
        let mut syms: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        names.sort_unstable();
        syms.sort();
        let resolved: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
        assert_eq!(resolved, names);
    }

    #[test]
    fn compares_with_strings_both_ways() {
        let s = Symbol::intern("cpu/0");
        assert_eq!(s, "cpu/0");
        assert!("cpu/0" == s);
        assert_eq!(s, String::from("cpu/0"));
        assert!(s != "cpu/1");
    }

    #[test]
    fn display_and_debug_resolve() {
        let s = Symbol::intern("fnx/ep0");
        assert_eq!(format!("{s}"), "fnx/ep0");
        assert_eq!(format!("{s:?}"), "\"fnx/ep0\"");
    }

    #[test]
    fn default_is_empty() {
        assert!(Symbol::default().is_empty());
        assert_eq!(Symbol::default(), "");
    }

    #[test]
    fn from_string_variants() {
        let owned = String::from("intern-test-owned");
        let a: Symbol = (&owned).into();
        let b: Symbol = owned.into();
        let c: Symbol = "intern-test-owned".into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn symbols_are_send_sync() {
        // The interner is global (Mutex + OnceLock), not thread-local, so
        // symbols may cross threads; this fails to compile if that
        // property regresses.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Symbol>();
    }
}
