//! Virtual time for the discrete-event simulation.
//!
//! The kernel measures time in integer nanoseconds since the start of the
//! simulation. Absolute instants are [`SimTime`]; intervals reuse
//! [`std::time::Duration`] so call sites can write
//! `sim.sleep(Duration::from_millis(5))`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant on the simulation clock, in nanoseconds since t=0.
///
/// `SimTime` is a total order and supports arithmetic with
/// [`std::time::Duration`]. The representable range (~584 years) is far
/// beyond any campaign length in this system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from nanoseconds since t=0.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds an instant from microseconds since t=0.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Builds an instant from milliseconds since t=0.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Builds an instant from whole seconds since t=0.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds since t=0.
    ///
    /// Negative and non-finite inputs clamp to zero; overly large inputs
    /// clamp to [`SimTime::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(nanos as u64)
        }
    }

    /// Nanoseconds since t=0.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since t=0.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        let nanos = d.as_nanos();
        if nanos >= u128::from(u64::MAX - self.0) {
            SimTime::MAX
        } else {
            SimTime(self.0 + nanos as u64)
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// Converts fractional seconds to a [`Duration`], clamping negatives to zero.
///
/// Cost models produce `f64` seconds; this is the single place where they
/// are quantized onto the simulation clock.
pub fn secs(s: f64) -> Duration {
    if !s.is_finite() || s <= 0.0 {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(s)
    }
}

/// Converts fractional milliseconds to a [`Duration`].
pub fn millis(ms: f64) -> Duration {
    secs(ms / 1e3)
}

/// Converts fractional microseconds to a [`Duration`].
pub fn micros(us: f64) -> Duration {
    secs(us / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_nanos(3).as_nanos(), 3);
    }

    #[test]
    fn secs_f64_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
    }

    #[test]
    fn add_saturates() {
        let t = SimTime::MAX + Duration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn duration_since_saturates_at_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.duration_since(a), Duration::from_secs(1));
        assert_eq!(a.duration_since(b), Duration::ZERO);
        assert_eq!(b - a, Duration::from_secs(1));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [SimTime::from_secs(2), SimTime::ZERO, SimTime::from_millis(1)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(2));
    }

    #[test]
    fn helper_conversions() {
        assert_eq!(secs(0.001), Duration::from_millis(1));
        assert_eq!(millis(1.5), Duration::from_micros(1500));
        assert_eq!(micros(2.0), Duration::from_nanos(2000));
        assert_eq!(secs(-5.0), Duration::ZERO);
        assert_eq!(secs(f64::NAN), Duration::ZERO);
    }
}
