//! Coordination primitives for simulated actors.
//!
//! [`Event`] mirrors `threading.Event` in the paper's Colmena agents
//! (agents block until "enough simulations finished" is flagged).
//! [`Semaphore`] models limited resources — worker slots, per-user
//! concurrent Globus transfers, batch-job node counts — with FIFO
//! fairness so acquisition order is deterministic.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

struct EventState {
    set: bool,
    generation: u64,
    wakers: Vec<Waker>,
}

/// A manual-reset event flag.
///
/// `wait()` resolves immediately while the flag is set; `clear()` resets
/// it. Setting wakes every waiter.
#[derive(Clone)]
pub struct Event {
    state: Rc<RefCell<EventState>>,
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    /// Creates an unset event.
    pub fn new() -> Self {
        Event {
            state: Rc::new(RefCell::new(EventState {
                set: false,
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Sets the flag, waking all current waiters.
    pub fn set(&self) {
        let mut s = self.state.borrow_mut();
        s.set = true;
        s.generation += 1;
        for w in s.wakers.drain(..) {
            w.wake();
        }
    }

    /// Clears the flag.
    pub fn clear(&self) {
        self.state.borrow_mut().set = false;
    }

    /// True while the flag is set.
    pub fn is_set(&self) -> bool {
        self.state.borrow().set
    }

    /// Awaits the flag being set.
    pub fn wait(&self) -> EventWait {
        EventWait { event: self.clone() }
    }

    /// Awaits the *next* `set()` call, even if the flag is currently set —
    /// the edge-triggered variant agents use to react to "new result"
    /// pulses without missing or double-counting them.
    pub fn wait_next(&self) -> EventWaitNext {
        let gen = self.state.borrow().generation;
        EventWaitNext { event: self.clone(), seen: gen }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait {
    event: Event,
}

impl Future for EventWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.event.state.borrow_mut();
        if s.set {
            Poll::Ready(())
        } else {
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`Event::wait_next`].
pub struct EventWaitNext {
    event: Event,
    seen: u64,
}

impl Future for EventWaitNext {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.event.state.borrow_mut();
        if s.generation > self.seen {
            Poll::Ready(())
        } else {
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct Waiter {
    granted: std::cell::Cell<bool>,
    cancelled: std::cell::Cell<bool>,
    waker: RefCell<Option<Waker>>,
    count: usize,
}

struct SemState {
    permits: usize,
    waiters: VecDeque<Rc<Waiter>>,
}

impl SemState {
    /// Hands available permits to waiters at the queue head, preserving
    /// FIFO order (a large request at the head blocks smaller ones behind
    /// it, preventing starvation).
    fn grant(&mut self) {
        while let Some(front) = self.waiters.front() {
            if front.cancelled.get() {
                self.waiters.pop_front();
                continue;
            }
            if self.permits >= front.count {
                self.permits -= front.count;
                // hetlint: allow(r5) — the loop condition just matched `front()`, so the
                // queue cannot be empty; a None here is semaphore bookkeeping corruption.
                let w = self.waiters.pop_front().expect("front exists");
                w.granted.set(true);
                let waker = w.waker.borrow_mut().take();
                if let Some(waker) = waker {
                    waker.wake();
                }
            } else {
                break;
            }
        }
    }
}

/// A counting semaphore with FIFO fairness.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl Semaphore {
    /// Creates a semaphore holding `permits` permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(SemState { permits, waiters: VecDeque::new() })),
        }
    }

    /// Awaits one permit.
    pub fn acquire(&self) -> Acquire {
        self.acquire_many(1)
    }

    /// Awaits `count` permits, granted atomically.
    pub fn acquire_many(&self, count: usize) -> Acquire {
        Acquire { sem: self.clone(), count, waiter: None, taken: false }
    }

    /// Takes a permit only if one is immediately available.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut s = self.state.borrow_mut();
        if s.waiters.is_empty() && s.permits >= 1 {
            s.permits -= 1;
            Some(Permit { sem: self.clone(), count: 1 })
        } else {
            None
        }
    }

    /// Adds permits (e.g. a batch job bringing more nodes online).
    pub fn add_permits(&self, count: usize) {
        let mut s = self.state.borrow_mut();
        s.permits += count;
        s.grant();
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }

    /// Tasks currently queued for permits.
    pub fn waiting(&self) -> usize {
        let s = self.state.borrow();
        s.waiters.iter().filter(|w| !w.cancelled.get()).count()
    }

    fn release(&self, count: usize) {
        let mut s = self.state.borrow_mut();
        s.permits += count;
        s.grant();
    }
}

/// RAII permit; releases on drop.
pub struct Permit {
    sem: Semaphore,
    count: usize,
}

impl Permit {
    /// Number of permits held.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Releases without waiting for scope end.
    pub fn release(self) {
        drop(self);
    }

    /// Forgets the permit without releasing — models a worker that is
    /// permanently retired.
    pub fn forget(mut self) {
        self.count = 0;
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.count > 0 {
            self.sem.release(self.count);
        }
    }
}

/// Future returned by [`Semaphore::acquire_many`].
pub struct Acquire {
    sem: Semaphore,
    count: usize,
    waiter: Option<Rc<Waiter>>,
    taken: bool,
}

impl Future for Acquire {
    type Output = Permit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        if let Some(waiter) = &self.waiter {
            if waiter.granted.get() {
                self.taken = true;
                return Poll::Ready(Permit { sem: self.sem.clone(), count: self.count });
            }
            *waiter.waker.borrow_mut() = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut s = self.sem.state.borrow_mut();
        if s.waiters.is_empty() && s.permits >= self.count {
            s.permits -= self.count;
            drop(s);
            self.taken = true;
            return Poll::Ready(Permit { sem: self.sem.clone(), count: self.count });
        }
        let waiter = Rc::new(Waiter {
            granted: std::cell::Cell::new(false),
            cancelled: std::cell::Cell::new(false),
            waker: RefCell::new(Some(cx.waker().clone())),
            count: self.count,
        });
        s.waiters.push_back(Rc::clone(&waiter));
        drop(s);
        self.waiter = Some(waiter);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(waiter) = &self.waiter {
            if waiter.granted.get() {
                if !self.taken {
                    // Granted but never observed (future dropped in a
                    // race): return the permits.
                    self.sem.release(self.count);
                }
            } else {
                waiter.cancelled.set(true);
                // A cancelled waiter at the head may unblock others.
                self.sem.state.borrow_mut().grant();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::secs;
    use crate::SimTime;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn event_wait_resolves_after_set() {
        let sim = Sim::new();
        let ev = Event::new();
        let ev2 = ev.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            ev2.wait().await;
            s.now()
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(4.0)).await;
            ev.set();
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(4));
    }

    #[test]
    fn event_already_set_resolves_immediately() {
        let sim = Sim::new();
        let ev = Event::new();
        ev.set();
        let ev2 = ev.clone();
        let h = sim.spawn(async move {
            ev2.wait().await;
            true
        });
        assert!(sim.block_on(h));
    }

    #[test]
    fn event_clear_blocks_again() {
        let ev = Event::new();
        ev.set();
        assert!(ev.is_set());
        ev.clear();
        assert!(!ev.is_set());
    }

    #[test]
    fn event_wakes_all_waiters() {
        let sim = Sim::new();
        let ev = Event::new();
        let count: Rc<StdRefCell<u32>> = Rc::default();
        for _ in 0..5 {
            let ev = ev.clone();
            let count = Rc::clone(&count);
            sim.spawn(async move {
                ev.wait().await;
                *count.borrow_mut() += 1;
            });
        }
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            ev.set();
        });
        sim.run();
        assert_eq!(*count.borrow(), 5);
    }

    #[test]
    fn wait_next_is_edge_triggered() {
        let sim = Sim::new();
        let ev = Event::new();
        ev.set(); // pre-set: level wait would pass, edge wait must not
        let ev2 = ev.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            ev2.wait_next().await;
            s.now()
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(2.0)).await;
            ev.set();
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(2));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let active: Rc<StdRefCell<(u32, u32)>> = Rc::default(); // (current, max)
        for _ in 0..6 {
            let sem = sem.clone();
            let active = Rc::clone(&active);
            let s = sim.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                {
                    let mut a = active.borrow_mut();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                s.sleep(secs(1.0)).await;
                active.borrow_mut().0 -= 1;
            });
        }
        let r = sim.run();
        assert_eq!(active.borrow().1, 2, "max concurrency must be 2");
        assert_eq!(r.end, SimTime::from_secs(3), "6 jobs / 2 slots / 1s each");
    }

    #[test]
    fn semaphore_fifo_order() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let order: Rc<StdRefCell<Vec<u32>>> = Rc::default();
        // Occupy the only permit for 1s.
        {
            let sem = sem.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                s.sleep(secs(1.0)).await;
            });
        }
        for i in 0..4u32 {
            let sem = sem.clone();
            let order = Rc::clone(&order);
            let s = sim.clone();
            sim.spawn(async move {
                // Stagger arrival to fix the queue order.
                s.sleep(secs(0.1 * f64::from(i + 1))).await;
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                s.sleep(secs(0.5)).await;
            });
        }
        sim.run();
        assert_eq!(order.borrow().as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn acquire_many_atomic() {
        let sim = Sim::new();
        let sem = Semaphore::new(4);
        let s = sim.clone();
        let sem2 = sem.clone();
        let h = sim.spawn(async move {
            let p = sem2.acquire_many(3).await;
            assert_eq!(p.count(), 3);
            assert_eq!(sem2.available(), 1);
            s.sleep(secs(1.0)).await;
            drop(p);
            sem2.available()
        });
        assert_eq!(sim.block_on(h), 4);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let p = sem.try_acquire().expect("free permit");
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert!(sem.try_acquire().is_some());
        drop(sim);
    }

    #[test]
    fn add_permits_unblocks_waiters() {
        let sim = Sim::new();
        let sem = Semaphore::new(0);
        let sem2 = sem.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let _p = sem2.acquire().await;
            s.now()
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(7.0)).await;
            sem.add_permits(1);
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(7));
    }

    #[test]
    fn permit_forget_removes_capacity() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let sem2 = sem.clone();
        let h = sim.spawn(async move {
            let p = sem2.acquire().await;
            p.forget();
            sem2.available()
        });
        assert_eq!(sim.block_on(h), 1);
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn cancelled_waiter_does_not_consume() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        let holder = sem.try_acquire().unwrap();
        // A waiter that gives up.
        {
            let sem = sem.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let acq = sem.acquire();
                // Poll it once inside a timeout-like race, then drop.
                let sleep = s.sleep(secs(0.5));
                futures_race(acq, sleep).await;
            });
        }
        // A later waiter that should still get the permit.
        let sem2 = sem.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(secs(0.1)).await;
            let _p = sem2.acquire().await;
            s.now()
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(2.0)).await;
            drop(holder);
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(2));
    }

    /// Minimal two-way race for the test above: resolves when either
    /// future does, dropping the loser.
    async fn futures_race<A: Future + Unpin, B: Future + Unpin>(a: A, b: B) {
        use std::future::poll_fn;
        let mut a = Some(a);
        let mut b = Some(b);
        poll_fn(move |cx| {
            if let Some(fa) = a.as_mut() {
                if Pin::new(fa).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
            }
            if let Some(fb) = b.as_mut() {
                if Pin::new(fb).poll(cx).is_ready() {
                    return Poll::Ready(());
                }
            }
            Poll::Pending
        })
        .await
    }
}
