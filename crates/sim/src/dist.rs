//! Parametric distributions for latency and duration cost models.
//!
//! Calibration tables in `hetflow-core` describe every stochastic cost as a
//! [`Dist`] value, so experiments can swap a constant for a long-tailed
//! model with a one-line change, and property tests can reason about
//! support bounds.

use crate::rng::SimRng;
use std::time::Duration;

/// A one-dimensional distribution over non-negative reals.
///
/// All variants clamp samples at zero: cost models never produce negative
/// latencies, even for `Normal` tails.
#[derive(Clone, Debug, PartialEq)]
pub enum Dist {
    /// Always `value`.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean (1/λ).
        mean: f64,
    },
    /// Normal truncated at zero.
    Normal {
        /// Mean of the untruncated normal.
        mean: f64,
        /// Standard deviation.
        sd: f64,
    },
    /// Log-normal parameterized by its *median* and the σ of the
    /// underlying normal — the natural way to express "typically 500 ms,
    /// occasionally seconds" service latencies.
    LogNormal {
        /// Median of the distribution (= e^μ).
        median: f64,
        /// σ of the underlying normal.
        sigma: f64,
    },
    /// Pareto (Lomax-style heavy tail) with minimum `scale` and shape
    /// `alpha`; models rare multi-second stragglers.
    Pareto {
        /// Minimum value (the distribution's support starts here).
        scale: f64,
        /// Tail index; smaller means heavier tail.
        alpha: f64,
    },
    /// `base + inner`: a deterministic floor plus stochastic excess.
    Shifted {
        /// Deterministic floor added to every sample.
        base: f64,
        /// The stochastic excess above the floor.
        inner: Box<Dist>,
    },
}

impl Dist {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let x = match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => rng.uniform(*lo, *hi),
            Dist::Exponential { mean } => {
                // Inverse CDF on u in (0,1].
                let u = 1.0 - rng.unit();
                -mean * u.ln()
            }
            Dist::Normal { mean, sd } => mean + sd * rng.standard_normal(),
            Dist::LogNormal { median, sigma } => {
                (median.ln() + sigma * rng.standard_normal()).exp()
            }
            Dist::Pareto { scale, alpha } => {
                let u = 1.0 - rng.unit();
                scale / u.powf(1.0 / alpha)
            }
            Dist::Shifted { base, inner } => base + inner.sample(rng),
        };
        x.max(0.0)
    }

    /// Draws a sample interpreted as seconds and converts it to a
    /// [`Duration`].
    pub fn sample_secs(&self, rng: &mut SimRng) -> Duration {
        crate::time::secs(self.sample(rng))
    }

    /// The mean of the distribution *as sampled* — i.e. of the
    /// zero-clamped variable [`sample`](Dist::sample) actually draws,
    /// not of the untruncated parametric form. Pareto with `alpha <= 1`
    /// returns infinity. `Shifted` with a negative `base` returns a
    /// lower bound (the value is exact whenever `base >= 0`, the only
    /// configuration cost models use).
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => v.max(0.0),
            Dist::Uniform { lo, hi } => {
                if *hi <= 0.0 {
                    0.0
                } else if *lo >= 0.0 {
                    0.5 * (lo + hi)
                } else {
                    // Mass below zero collapses onto zero:
                    // E[max(U,0)] = ∫₀ʰⁱ x/(hi-lo) dx.
                    0.5 * hi * hi / (hi - lo)
                }
            }
            Dist::Exponential { mean } => mean.max(0.0),
            Dist::Normal { mean, sd } => {
                if *sd <= 0.0 {
                    mean.max(0.0)
                } else {
                    // E[max(X,0)] = μΦ(μ/σ) + σφ(μ/σ) for X ~ N(μ,σ²).
                    let z = mean / sd;
                    mean * normal_cdf(z) + sd * normal_pdf(z)
                }
            }
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::Pareto { scale, alpha } => {
                if *scale <= 0.0 {
                    0.0
                } else if *alpha <= 1.0 {
                    f64::INFINITY
                } else {
                    scale * alpha / (alpha - 1.0)
                }
            }
            Dist::Shifted { base, inner } => (base + inner.mean()).max(0.0),
        }
    }

    /// A lower bound on the support of the sampled (zero-clamped)
    /// variable — never negative, matching what `sample` can return.
    pub fn min_support(&self) -> f64 {
        match self {
            Dist::Constant(v) => v.max(0.0),
            Dist::Uniform { lo, .. } => lo.max(0.0),
            Dist::Exponential { .. } | Dist::Normal { .. } | Dist::LogNormal { .. } => 0.0,
            Dist::Pareto { scale, .. } => scale.max(0.0),
            Dist::Shifted { base, inner } => (base + inner.min_support()).max(0.0),
        }
    }

    /// Convenience constructor: a constant number of seconds.
    pub fn const_secs(v: f64) -> Dist {
        Dist::Constant(v)
    }

    /// Convenience constructor: a constant number of milliseconds.
    pub fn const_millis(v: f64) -> Dist {
        Dist::Constant(v / 1e3)
    }

    /// Log-normal from a median given in milliseconds.
    pub fn lognormal_millis(median_ms: f64, sigma: f64) -> Dist {
        Dist::LogNormal { median: median_ms / 1e3, sigma }
    }
}

/// Standard normal CDF Φ via the Abramowitz–Stegun 7.1.26 erf
/// approximation (max abs error ≈ 1.5e-7 — far below sampling noise).
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal density φ.
fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::Constant(2.5);
        let mut rng = SimRng::from_seed(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 2.5);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::Uniform { lo: 1.0, hi: 3.0 };
        let mut rng = SimRng::from_seed(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..3.0).contains(&x));
        }
        assert!((mean_of(&d, 20_000, 3) - 2.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean() {
        let d = Dist::Exponential { mean: 0.5 };
        assert!((mean_of(&d, 50_000, 4) - 0.5).abs() < 0.01);
    }

    #[test]
    fn normal_clamped_nonnegative() {
        let d = Dist::Normal { mean: 0.1, sd: 1.0 };
        let mut rng = SimRng::from_seed(5);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_median() {
        let d = Dist::LogNormal { median: 0.5, sigma: 0.4 };
        let mut rng = SimRng::from_seed(6);
        let mut v: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(f64::total_cmp);
        let median = v[5000];
        assert!((median - 0.5).abs() < 0.02, "median {median}");
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = Dist::LogNormal { median: 1.0, sigma: 0.5 };
        let sampled = mean_of(&d, 100_000, 7);
        assert!((sampled - d.mean()).abs() / d.mean() < 0.02);
    }

    #[test]
    fn pareto_min_and_mean() {
        let d = Dist::Pareto { scale: 1.0, alpha: 3.0 };
        let mut rng = SimRng::from_seed(8);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        assert!((mean_of(&d, 200_000, 9) - 1.5).abs() < 0.02);
        assert_eq!(Dist::Pareto { scale: 1.0, alpha: 0.9 }.mean(), f64::INFINITY);
    }

    #[test]
    fn shifted_adds_base() {
        let d = Dist::Shifted { base: 2.0, inner: Box::new(Dist::Constant(0.5)) };
        let mut rng = SimRng::from_seed(10);
        assert_eq!(d.sample(&mut rng), 2.5);
        assert_eq!(d.mean(), 2.5);
        assert_eq!(d.min_support(), 2.5);
    }

    #[test]
    fn sample_secs_converts() {
        let d = Dist::const_millis(250.0);
        let mut rng = SimRng::from_seed(11);
        assert_eq!(d.sample_secs(&mut rng), Duration::from_millis(250));
    }

    #[test]
    fn min_support_values() {
        assert_eq!(Dist::Uniform { lo: 0.2, hi: 0.4 }.min_support(), 0.2);
        assert_eq!(Dist::Exponential { mean: 1.0 }.min_support(), 0.0);
        assert_eq!(Dist::Constant(-1.0).min_support(), 0.0);
        // The clamp applies after the shift, so a negative base cannot
        // drag the support below zero.
        let d = Dist::Shifted { base: -2.0, inner: Box::new(Dist::Constant(0.5)) };
        assert_eq!(d.min_support(), 0.0);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn mean_matches_sampled_mean_for_every_variant() {
        // Regression: mean() must describe the clamped variable that
        // sample() draws, for every variant — including configurations
        // where the clamp actually bites (negative constants, uniforms
        // straddling zero, normals with heavy left tails).
        let cases = [
            Dist::Constant(2.5),
            Dist::Constant(-1.0),
            Dist::Uniform { lo: 1.0, hi: 3.0 },
            Dist::Uniform { lo: -1.0, hi: 1.0 },
            Dist::Uniform { lo: -3.0, hi: -1.0 },
            Dist::Exponential { mean: 0.5 },
            Dist::Normal { mean: 1.0, sd: 0.1 },
            Dist::Normal { mean: 0.1, sd: 1.0 },
            Dist::Normal { mean: -0.5, sd: 1.0 },
            Dist::LogNormal { median: 0.5, sigma: 0.4 },
            Dist::Pareto { scale: 1.0, alpha: 3.0 },
            Dist::Shifted { base: 2.0, inner: Box::new(Dist::Normal { mean: 0.0, sd: 0.5 }) },
        ];
        for (i, d) in cases.iter().enumerate() {
            let sampled = mean_of(d, 400_000, 100 + i as u64);
            let analytic = d.mean();
            let tol = 0.02 * analytic.abs().max(0.05);
            assert!(
                (sampled - analytic).abs() < tol,
                "{d:?}: sampled {sampled} vs mean() {analytic}"
            );
        }
    }
}
