//! Future combinators for simulated actors.
//!
//! Small, allocation-light helpers: racing a future against a deadline
//! ([`Sim::timeout`]), racing two futures ([`select2`]), awaiting many
//! ([`join_all`]), periodic ticks ([`Interval`]), and a reusable
//! [`Barrier`]. All operate purely in virtual time.

use crate::executor::{Sim, Sleep};
use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Poll, Waker};
use std::time::Duration;

/// Outcome of [`select2`].
#[derive(Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Races two futures; the loser is dropped.
///
/// Polling order is deterministic: `a` is polled before `b` at every
/// step, so simultaneous readiness resolves to `Left`.
pub async fn select2<A, B>(a: A, b: B) -> Either<A::Output, B::Output>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    let mut a = a;
    let mut b = b;
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = Pin::new(&mut a).poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = Pin::new(&mut b).poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    })
    .await
}

/// Error returned by [`Sim::timeout`] when the deadline fires first.
#[derive(Debug, PartialEq, Eq)]
pub struct Elapsed;

impl Sim {
    /// Limits `fut` to `d` of virtual time.
    pub async fn timeout<F>(&self, d: Duration, fut: F) -> Result<F::Output, Elapsed>
    where
        F: Future + Unpin,
    {
        match select2(fut, self.sleep(d)).await {
            Either::Left(v) => Ok(v),
            Either::Right(()) => Err(Elapsed),
        }
    }

    /// A periodic ticker with the first tick after one period.
    pub fn interval(&self, period: Duration) -> Interval {
        assert!(period > Duration::ZERO, "interval period must be positive");
        Interval { sim: self.clone(), period, sleep: None }
    }
}

/// Awaits all futures, returning outputs in input order.
pub async fn join_all<F: Future + Unpin>(futs: Vec<F>) -> Vec<F::Output> {
    let mut slots: Vec<Option<F::Output>> = futs.iter().map(|_| None).collect();
    let mut futs: Vec<Option<F>> = futs.into_iter().map(Some).collect();
    std::future::poll_fn(move |cx| {
        let mut pending = false;
        for (slot, fut) in slots.iter_mut().zip(futs.iter_mut()) {
            if let Some(f) = fut {
                match Pin::new(f).poll(cx) {
                    Poll::Ready(v) => {
                        *slot = Some(v);
                        *fut = None;
                    }
                    Poll::Pending => pending = true,
                }
            }
        }
        if pending {
            Poll::Pending
        } else {
            // hetlint: allow(r5) — every slot was filled on the branch that cleared
            // `pending`; an empty slot here is join_all corrupting its own state.
            Poll::Ready(slots.iter_mut().map(|s| s.take().expect("filled")).collect())
        }
    })
    .await
}

/// Periodic ticker created by [`Sim::interval`].
pub struct Interval {
    sim: Sim,
    period: Duration,
    sleep: Option<Sleep>,
}

impl Interval {
    /// Awaits the next tick.
    pub async fn tick(&mut self) {
        let sleep = self.sleep.take().unwrap_or_else(|| self.sim.sleep(self.period));
        sleep.await;
        self.sleep = Some(self.sim.sleep(self.period));
    }
}

struct BarrierState {
    needed: usize,
    arrived: usize,
    generation: u64,
    wakers: Vec<Waker>,
}

/// A reusable barrier for `n` tasks.
#[derive(Clone)]
pub struct Barrier {
    state: Rc<RefCell<BarrierState>>,
}

/// Returned by [`Barrier::wait`]; exactly one waiter per generation is
/// the leader.
#[derive(Debug, PartialEq, Eq)]
pub struct BarrierWaitResult {
    /// True for the task that completed the barrier.
    pub is_leader: bool,
}

impl Barrier {
    /// Creates a barrier for `n` tasks (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Barrier {
            state: Rc::new(RefCell::new(BarrierState {
                needed: n,
                arrived: 0,
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Waits for all `n` tasks to arrive; the last arrival releases
    /// everyone and is the leader.
    pub async fn wait(&self) -> BarrierWaitResult {
        let my_gen;
        {
            let mut s = self.state.borrow_mut();
            my_gen = s.generation;
            s.arrived += 1;
            if s.arrived == s.needed {
                s.arrived = 0;
                s.generation += 1;
                for w in s.wakers.drain(..) {
                    w.wake();
                }
                return BarrierWaitResult { is_leader: true };
            }
        }
        std::future::poll_fn(|cx| {
            let mut s = self.state.borrow_mut();
            if s.generation > my_gen {
                Poll::Ready(())
            } else {
                s.wakers.push(cx.waker().clone());
                Poll::Pending
            }
        })
        .await;
        BarrierWaitResult { is_leader: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;
    use crate::SimTime;
    use std::cell::Cell;

    #[test]
    fn select2_prefers_earlier() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let fast = s.sleep(secs(1.0));
            let slow = s.sleep(secs(2.0));
            match select2(slow, fast).await {
                Either::Left(()) => "slow",
                Either::Right(()) => "fast",
            }
        });
        assert_eq!(sim.block_on(h), "fast");
        assert_eq!(sim.now(), SimTime::from_secs(1), "loser must not hold the clock");
    }

    #[test]
    fn select2_simultaneous_is_left_biased() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let a = s.sleep(secs(1.0));
            let b = s.sleep(secs(1.0));
            select2(a, b).await
        });
        assert_eq!(sim.block_on(h), Either::Left(()));
    }

    #[test]
    fn timeout_passes_fast_futures() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let work = s.sleep(secs(1.0));
            s.timeout(secs(5.0), work).await
        });
        assert_eq!(sim.block_on(h), Ok(()));
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn timeout_cuts_slow_futures() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let work = s.sleep(secs(100.0));
            s.timeout(secs(5.0), work).await
        });
        assert_eq!(sim.block_on(h), Err(Elapsed));
        // The abandoned sleep must not drag the clock to t=100.
        let r = sim.run();
        assert_eq!(r.end, SimTime::from_secs(5));
    }

    #[test]
    fn join_all_waits_for_slowest_in_parallel() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let handles: Vec<_> = (1..=4u64)
                .map(|i| {
                    let s2 = s.clone();
                    s.spawn(async move {
                        s2.sleep(secs(i as f64)).await;
                        i * 10
                    })
                })
                .collect();
            join_all(handles).await
        });
        assert_eq!(sim.block_on(h), vec![10, 20, 30, 40]);
        assert_eq!(sim.now(), SimTime::from_secs(4), "parallel, not additive");
    }

    #[test]
    fn join_all_empty() {
        let sim = Sim::new();
        let h = sim.spawn(async move {
            let empty: Vec<crate::JoinHandle<u32>> = Vec::new();
            join_all(empty).await
        });
        assert_eq!(sim.block_on(h), Vec::<u32>::new());
    }

    #[test]
    fn interval_ticks_regularly() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut iv = s.interval(secs(10.0));
            let mut stamps = Vec::new();
            for _ in 0..3 {
                iv.tick().await;
                stamps.push(s.now());
            }
            stamps
        });
        assert_eq!(
            sim.block_on(h),
            vec![SimTime::from_secs(10), SimTime::from_secs(20), SimTime::from_secs(30)]
        );
    }

    #[test]
    fn interval_unaffected_by_work_between_ticks() {
        // Ticks are scheduled from the previous deadline, not from when
        // tick() is called, so slow work does not accumulate drift
        // (unless it exceeds the period).
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut iv = s.interval(secs(10.0));
            iv.tick().await;
            s.sleep(secs(3.0)).await; // work
            iv.tick().await;
            s.now()
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(20));
    }

    #[test]
    fn barrier_releases_all_at_once() {
        let sim = Sim::new();
        let barrier = Barrier::new(3);
        let leaders = Rc::new(Cell::new(0));
        let releases = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u64 {
            let b = barrier.clone();
            let s = sim.clone();
            let leaders = Rc::clone(&leaders);
            let releases = Rc::clone(&releases);
            sim.spawn(async move {
                s.sleep(secs(i as f64)).await;
                let r = b.wait().await;
                if r.is_leader {
                    leaders.set(leaders.get() + 1);
                }
                releases.borrow_mut().push(s.now());
            });
        }
        sim.run();
        assert_eq!(leaders.get(), 1);
        let releases = releases.borrow();
        assert_eq!(releases.len(), 3);
        assert!(releases.iter().all(|&t| t == SimTime::from_secs(2)));
    }

    #[test]
    fn barrier_is_reusable() {
        let sim = Sim::new();
        let barrier = Barrier::new(2);
        let s = sim.clone();
        let b1 = barrier.clone();
        let h = sim.spawn(async move {
            b1.wait().await;
            b1.wait().await;
            s.now()
        });
        let s2 = sim.clone();
        let b2 = barrier;
        sim.spawn(async move {
            s2.sleep(secs(1.0)).await;
            b2.wait().await;
            s2.sleep(secs(1.0)).await;
            b2.wait().await;
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(2));
    }
}
