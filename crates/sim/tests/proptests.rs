//! Property-based tests of kernel invariants.
//!
//! These cover the guarantees every higher layer silently relies on:
//! virtual time never goes backwards, channels are FIFO and lossless,
//! semaphores never over-grant, and execution is deterministic under
//! arbitrary task/timer interleavings.

use hetflow_sim::{bounded, channel, time::secs, Semaphore, Sim, SimTime, Symbol, SymbolMap};
use proptest::prelude::*;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any set of sleepers: the clock visits their deadlines in order
    /// and ends at the maximum.
    #[test]
    fn clock_is_monotone_over_random_sleeps(delays in prop::collection::vec(0u64..10_000, 1..40)) {
        let sim = Sim::new();
        let observed: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        for &d in &delays {
            let s = sim.clone();
            let observed = Rc::clone(&observed);
            sim.spawn(async move {
                s.sleep(secs(d as f64 / 1000.0)).await;
                observed.borrow_mut().push(s.now());
            });
        }
        let report = sim.run();
        let observed = observed.borrow();
        prop_assert_eq!(observed.len(), delays.len());
        for pair in observed.windows(2) {
            prop_assert!(pair[0] <= pair[1], "time went backwards");
        }
        let max = delays.iter().max().copied().unwrap_or(0);
        prop_assert_eq!(report.end, SimTime::from_millis(max));
        prop_assert_eq!(report.pending_tasks, 0);
    }

    /// Channels deliver every message exactly once, in order, to a
    /// single consumer, regardless of producer interleaving.
    #[test]
    fn channel_is_lossless_and_fifo_per_producer(
        batches in prop::collection::vec(prop::collection::vec(0u32..1000, 0..20), 1..5)
    ) {
        let sim = Sim::new();
        let (tx, rx) = channel::<(usize, u32)>();
        let total: usize = batches.iter().map(Vec::len).sum();
        for (p, batch) in batches.clone().into_iter().enumerate() {
            let tx = tx.clone();
            let s = sim.clone();
            sim.spawn(async move {
                for (i, v) in batch.into_iter().enumerate() {
                    s.sleep(secs((v as f64) / 500.0 + i as f64 * 0.001)).await;
                    let _ = tx.send_now((p, v));
                }
            });
        }
        drop(tx);
        let got: Rc<RefCell<Vec<(usize, u32)>>> = Rc::default();
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            while let Some(item) = rx.recv().await {
                got2.borrow_mut().push(item);
            }
        });
        sim.run();
        prop_assert_eq!(got.borrow().len(), total);
    }

    /// A semaphore of capacity k never admits more than k holders, for
    /// arbitrary hold times and task counts.
    #[test]
    fn semaphore_never_overgrants(
        k in 1usize..6,
        holds in prop::collection::vec(1u64..50, 1..30)
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(k);
        let active = Rc::new(Cell::new(0usize));
        let peak = Rc::new(Cell::new(0usize));
        for &h in &holds {
            let sem = sem.clone();
            let s = sim.clone();
            let active = Rc::clone(&active);
            let peak = Rc::clone(&peak);
            sim.spawn(async move {
                let _p = sem.acquire().await;
                active.set(active.get() + 1);
                peak.set(peak.get().max(active.get()));
                s.sleep(secs(h as f64 / 100.0)).await;
                active.set(active.get() - 1);
            });
        }
        sim.run();
        prop_assert!(peak.get() <= k, "peak {} exceeded capacity {}", peak.get(), k);
        prop_assert_eq!(active.get(), 0usize);
        prop_assert_eq!(sem.available(), k);
    }

    /// Bounded channels never hold more than their capacity.
    #[test]
    fn bounded_channel_respects_capacity(
        cap in 1usize..8,
        n in 1usize..40,
        consume_ms in 1u64..20
    ) {
        let sim = Sim::new();
        let (tx, rx) = bounded::<usize>(cap);
        let peak = Rc::new(Cell::new(0usize));
        {
            let s = sim.clone();
            let peak = Rc::clone(&peak);
            let rx2 = rx.clone();
            sim.spawn(async move {
                loop {
                    peak.set(peak.get().max(rx2.len()));
                    s.sleep(secs(consume_ms as f64 / 1000.0)).await;
                    if rx2.recv().await.is_none() {
                        break;
                    }
                }
            });
        }
        drop(rx);
        sim.spawn(async move {
            for i in 0..n {
                if tx.send(i).await.is_err() {
                    break;
                }
            }
        });
        sim.run();
        prop_assert!(peak.get() <= cap, "peak {} > cap {}", peak.get(), cap);
    }

    /// `SymbolMap` must iterate exactly like the `BTreeMap<String, _>`
    /// it replaced on digest-visible paths, for any interleaving of
    /// inserts, overwrites, and removes over a random interned-name
    /// set (fabric-style endpoint/topic names included so separator
    /// characters are exercised).
    #[test]
    fn symbol_map_iterates_like_string_btree(
        ops in prop::collection::vec((0u8..12, 0u16..40, 0u32..1000), 1..120)
    ) {
        let mut dense: SymbolMap<u32> = SymbolMap::new();
        let mut tree: BTreeMap<String, u32> = BTreeMap::new();
        for (kind, name_ix, value) in ops {
            // A mixed name population: plain words, fabric endpoint
            // names with separators, and numeric suffixes whose string
            // order differs from numeric order.
            let name = match kind % 4 {
                0 => format!("pt-topic-{name_ix}"),
                1 => format!("fnx/ep{name_ix}"),
                2 => format!("htex/ep{name_ix}"),
                _ => format!("pt/{}/{name_ix}", kind),
            };
            let sym = Symbol::intern(&name);
            if kind >= 9 {
                prop_assert_eq!(dense.remove(sym), tree.remove(&name));
            } else {
                prop_assert_eq!(dense.insert(sym, value), tree.insert(name, value));
            }
        }
        prop_assert_eq!(dense.len(), tree.len());
        let got: Vec<(&str, u32)> = dense.iter().map(|(k, &v)| (k.as_str(), v)).collect();
        let want: Vec<(&str, u32)> = tree.iter().map(|(k, &v)| (k.as_str(), v)).collect();
        prop_assert_eq!(got, want);
        let keys: Vec<&str> = dense.keys().map(|k| k.as_str()).collect();
        let want_keys: Vec<&str> = tree.keys().map(String::as_str).collect();
        prop_assert_eq!(keys, want_keys);
        for (name, &v) in &tree {
            prop_assert_eq!(dense.get(Symbol::intern(name)), Some(&v));
        }
    }

    /// Two identical runs produce identical completion orders
    /// (determinism under arbitrary workloads).
    #[test]
    fn execution_is_deterministic(seed in 0u64..1000, n in 1usize..60) {
        let run = || {
            let sim = Sim::new();
            let order: Rc<RefCell<Vec<usize>>> = Rc::default();
            let mut rng = hetflow_sim::SimRng::from_seed(seed);
            for i in 0..n {
                let d = rng.uniform(0.0, 5.0);
                let s = sim.clone();
                let order = Rc::clone(&order);
                sim.spawn(async move {
                    s.sleep(secs(d)).await;
                    order.borrow_mut().push(i);
                });
            }
            sim.run();
            let v = order.borrow().clone();
            v
        };
        prop_assert_eq!(run(), run());
    }
}
