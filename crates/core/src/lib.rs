//! # hetflow-core — the paper's system, assembled
//!
//! Ties the substrates together into the deployments evaluated in
//! "Cloud Services Enable Efficient AI-Guided Simulation Workflows
//! across Heterogeneous Resources":
//!
//! * [`platform`] — the Theta/Venti/RCC site topology of §V-A.
//! * [`calibration`] — every cost-model constant, cited to the paper
//!   observation it reproduces.
//! * [`config`] — the three workflow configurations of §V-B (Parsl,
//!   Parsl+Redis ProxyStore, FnX+Globus ProxyStore) and
//!   [`config::deploy`], which wires stores, fabric, worker pools, task
//!   server, and thinker queues on a simulation.
//! * [`report`] — utilization/data-movement reporting (Fig. 1 views).
//!
//! ```
//! use hetflow_core::{config::{deploy, DeploymentSpec, WorkflowConfig}};
//! use hetflow_fabric::TaskWork;
//! use hetflow_steer::Payload;
//! use hetflow_sim::{Sim, Tracer};
//! use std::rc::Rc;
//!
//! let sim = Sim::new();
//! let d = deploy(&sim, WorkflowConfig::FnXGlobus, &DeploymentSpec::default(),
//!                Tracer::disabled());
//! let q = d.queues.clone();
//! let h = sim.spawn(async move {
//!     q.submit("simulate", vec![Payload::new(21u32, 1_000_000)], Rc::new(|ctx| {
//!         TaskWork::new(*ctx.input::<u32>(0) * 2, 1000, std::time::Duration::from_secs(60))
//!     })).await;
//!     let done = q.get_result("simulate").await.unwrap().resolve().await;
//!     *done.value::<u32>()
//! });
//! assert_eq!(sim.block_on(h), 42);
//! ```

pub mod calibration;
pub mod config;
pub mod platform;
pub mod report;

pub use calibration::Calibration;
pub use config::{deploy, Deployment, DeploymentSpec, WorkflowConfig};
pub use report::UtilizationReport;
