//! Run-level reporting: resource utilization and data-movement series.
//!
//! Reconstructs the Fig. 1 views from finished-task records: the number
//! of tasks running on each resource over time and the cumulative data
//! transferred *to* each resource (task inputs landing at the worker's
//! site; result data landing back at the thinker).

use crate::platform::{site_name, THETA};
use hetflow_steer::TaskRecord;
use hetflow_store::SiteId;
use hetflow_sim::{Gauge, SimTime, TimeSeries};
use std::collections::BTreeMap;

/// Per-site utilization and transfer series for one run.
#[derive(Default)]
pub struct UtilizationReport {
    /// Tasks running on each site over time.
    pub running: BTreeMap<SiteId, Gauge>,
    /// Cumulative bytes delivered to each site over time.
    pub cumulative_bytes: BTreeMap<SiteId, TimeSeries>,
    /// End of the observed window.
    pub end: SimTime,
}

impl UtilizationReport {
    /// Builds the report from task records.
    pub fn from_records(records: &[TaskRecord]) -> Self {
        // Running gauges need time-ordered events.
        let mut events: Vec<(SimTime, SiteId, f64)> = Vec::new();
        // Byte arrivals: input data arrives at the worker site when
        // inputs are resolved; output data arrives at the thinker when
        // the result is ready.
        let mut arrivals: Vec<(SimTime, SiteId, u64)> = Vec::new();
        let mut end = SimTime::ZERO;
        for r in records {
            if let (Some(start), Some(stop)) =
                (r.timing.worker_started, r.timing.result_dispatched)
            {
                events.push((start, r.site, 1.0));
                events.push((stop, r.site, -1.0));
            }
            if let Some(t) = r.timing.inputs_resolved {
                arrivals.push((t, r.site, r.input_bytes));
            }
            if let Some(t) = r.timing.result_ready {
                arrivals.push((t, THETA, r.output_bytes));
                end = end.max(t);
            }
        }
        events.sort_by_key(|&(t, s, _)| (t, s));
        arrivals.sort_by_key(|&(t, s, _)| (t, s));

        let mut report = UtilizationReport { end, ..Default::default() };
        for (t, site, delta) in events {
            report.running.entry(site).or_default().add(t, delta);
            report.end = report.end.max(t);
        }
        let mut totals: BTreeMap<SiteId, u64> = BTreeMap::new();
        for (t, site, bytes) in arrivals {
            let total = totals.entry(site).or_insert(0);
            *total += bytes;
            report
                .cumulative_bytes
                .entry(site)
                .or_default()
                .push(t, *total as f64);
        }
        report
    }

    /// Total bytes delivered to `site`.
    pub fn total_bytes(&self, site: SiteId) -> u64 {
        self.cumulative_bytes
            .get(&site)
            .and_then(|s| s.points().last().map(|&(_, v)| v as u64))
            .unwrap_or(0)
    }

    /// Time-averaged tasks running at `site` over the run.
    pub fn mean_running(&self, site: SiteId) -> f64 {
        self.running
            .get(&site)
            .map(|g| g.time_average(self.end))
            .unwrap_or(0.0)
    }

    /// Prints the Fig. 1-style series on a uniform grid of `n` points.
    pub fn print_series(&self, n: usize) {
        println!("# t_seconds site running cumulative_GB");
        for (&site, gauge) in &self.running {
            let bytes = self.cumulative_bytes.get(&site);
            for (t, running) in gauge.series().resample(self.end, n, 0.0) {
                let gb = bytes
                    .map(|b| b.value_at(SimTime::from_secs_f64(t), 0.0) / 1e9)
                    .unwrap_or(0.0);
                println!("{t:10.1} {:>7} {running:6.1} {gb:10.3}", site_name(site));
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // timing fixtures read best as sequential stamps
mod tests {
    use super::*;
    use crate::platform::VENTI;
    use hetflow_fabric::{TaskTiming, WorkerReport};
    use std::time::Duration;

    fn record(site: SiteId, start_s: u64, dur_s: u64, in_b: u64, out_b: u64) -> TaskRecord {
        let start = SimTime::from_secs(start_s);
        let mut t = TaskTiming::default();
        t.created = Some(start);
        t.worker_started = Some(start + Duration::from_secs(1));
        t.inputs_resolved = Some(start + Duration::from_secs(2));
        t.compute_finished = Some(start + Duration::from_secs(2 + dur_s));
        t.result_dispatched = Some(start + Duration::from_secs(3 + dur_s));
        t.thinker_notified = Some(start + Duration::from_secs(4 + dur_s));
        t.result_ready = Some(start + Duration::from_secs(5 + dur_s));
        TaskRecord {
            id: start_s,
            topic: "t".into(),
            timing: t,
            report: WorkerReport::default(),
            input_bytes: in_b,
            output_bytes: out_b,
            thinker_data_wait: Duration::ZERO,
            data_was_local: true,
            site,
            worker: "w".into(),
            outcome: hetflow_fabric::TaskOutcome::Success,
        }
    }

    #[test]
    fn counts_running_tasks_per_site() {
        let records = vec![
            record(VENTI, 0, 10, 1000, 10),
            record(VENTI, 5, 10, 1000, 10),
            record(THETA, 0, 3, 500, 5),
        ];
        let rep = UtilizationReport::from_records(&records);
        let venti = rep.running.get(&VENTI).unwrap();
        // At t=6s both Venti tasks are running.
        assert_eq!(venti.series().value_at(SimTime::from_secs(7), 0.0), 2.0);
        // After both finish, zero.
        assert_eq!(venti.level(), 0.0);
        assert!(rep.mean_running(VENTI) > 0.0);
    }

    #[test]
    fn accumulates_bytes_to_sites() {
        let records = vec![
            record(VENTI, 0, 10, 1_000_000, 100),
            record(VENTI, 5, 10, 2_000_000, 200),
        ];
        let rep = UtilizationReport::from_records(&records);
        assert_eq!(rep.total_bytes(VENTI), 3_000_000);
        // Outputs land at Theta (the thinker).
        assert_eq!(rep.total_bytes(THETA), 300);
    }

    #[test]
    fn empty_records_are_fine() {
        let rep = UtilizationReport::from_records(&[]);
        assert_eq!(rep.total_bytes(THETA), 0);
        assert_eq!(rep.mean_running(THETA), 0.0);
    }
}
