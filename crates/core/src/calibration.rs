//! The calibration table: every cost-model constant in one place.
//!
//! Each value is tied to the paper observation it reproduces. These are
//! *effective* parameters of a simulator, not hardware datasheet
//! numbers: e.g. the cloud payload throughputs fold in base64/pickle
//! inflation and API chunking, and are set so the Fig. 3 speedup ratios
//! (2–3× at 10 kB, ~10× at 1 MB) come out of the model rather than
//! being hard-coded.

use crate::platform::{THETA, VENTI};
use hetflow_fabric::{FnXParams, HtexParams, LinkParams, SerModel};
use hetflow_sim::Dist;
use hetflow_store::{FsParams, GlobusParams, RedisParams, SiteId, SiteSet};
use std::time::Duration;

/// All infrastructure cost-model parameters for one experiment.
#[derive(Clone)]
pub struct Calibration {
    /// Cloud FaaS model (§V-C1: ElastiCache ≤ 20 kB, S3 above, 10 MB
    /// cap; §V-D3: ~100 ms dispatch).
    pub fnx: FnXParams,
    /// Direct-connection executor model.
    pub htex: HtexParams,
    /// Interchange→Theta link (same facility).
    pub link_theta: LinkParams,
    /// Interchange→Venti link (tunnel across networks).
    pub link_venti: LinkParams,
    /// Globus Transfer service (§V-D1: ~500 ms to start, 1–5 s to
    /// complete, per-user concurrency limit).
    pub globus: GlobusParams,
    /// Theta Lustre file system (shared by login + KNL).
    pub fs_theta: FsParams,
    /// Venti local file system (Globus endpoint's landing zone).
    pub fs_venti: FsParams,
    /// Redis server on the Theta login node, tunnel-reachable from
    /// Venti in the Parsl+Redis configuration.
    pub redis: RedisParams,
    /// Thinker↔server Redis queue hop.
    pub queue_latency: Dist,
    /// Thinker↔server queue payload throughput, bytes/s.
    pub queue_bandwidth: f64,
    /// CPython pickle model used at thinker, server, and workers.
    pub ser: SerModel,
    /// Manager→worker hop inside a node.
    pub worker_hop: Dist,
    /// Default auto-proxy threshold (§V-F: transmit data between sites
    /// directly for data larger than 10 kB).
    pub proxy_threshold: u64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            fnx: FnXParams::default(),
            htex: HtexParams::default(),
            link_theta: LinkParams {
                // Login node to KNL aggregation switch.
                latency: Dist::LogNormal { median: 0.004, sigma: 0.3 },
                bandwidth: 4.0e7,
            },
            link_venti: LinkParams {
                // Cross-network tunnel; the effective throughput folds
                // in the pickle passes at interchange and manager. Sized
                // so a 3 MB sampling payload costs ~hundreds of ms
                // (Fig. 7b: 820 ms total overhead) while the multi-GB
                // inference batches stay feasible, merely slow (Fig. 6).
                latency: Dist::LogNormal { median: 0.012, sigma: 0.3 },
                bandwidth: 2.5e7,
            },
            globus: GlobusParams::default(),
            fs_theta: FsParams::shared(&[THETA]),
            fs_venti: FsParams::shared(&[VENTI]),
            redis: RedisParams::with_tunnel(THETA, &[VENTI]),
            queue_latency: Dist::LogNormal { median: 0.0005, sigma: 0.3 },
            queue_bandwidth: 5.0e7,
            ser: SerModel::python_pickle(),
            worker_hop: Dist::LogNormal { median: 0.002, sigma: 0.3 },
            proxy_threshold: 10_000,
        }
    }
}

impl Calibration {
    /// Variant with every stochastic model replaced by its median —
    /// useful for tests that assert exact component sums.
    pub fn deterministic() -> Self {
        fn flatten(d: &Dist) -> Dist {
            match d {
                Dist::LogNormal { median, .. } => Dist::Constant(*median),
                Dist::Normal { mean, .. } => Dist::Constant(*mean),
                Dist::Uniform { lo, hi } => Dist::Constant(0.5 * (lo + hi)),
                other => other.clone(),
            }
        }
        let mut c = Calibration::default();
        c.fnx.https_latency = flatten(&c.fnx.https_latency);
        c.fnx.small_store_op = flatten(&c.fnx.small_store_op);
        c.fnx.large_store_op = flatten(&c.fnx.large_store_op);
        c.fnx.forward_latency = flatten(&c.fnx.forward_latency);
        c.fnx.result_latency = flatten(&c.fnx.result_latency);
        c.htex.submit_hop = flatten(&c.htex.submit_hop);
        c.link_theta.latency = flatten(&c.link_theta.latency);
        c.link_venti.latency = flatten(&c.link_venti.latency);
        c.globus.request_latency = flatten(&c.globus.request_latency);
        c.globus.service_time = flatten(&c.globus.service_time);
        c.fs_theta.op_latency = flatten(&c.fs_theta.op_latency);
        c.fs_venti.op_latency = flatten(&c.fs_venti.op_latency);
        c.redis.local_latency = flatten(&c.redis.local_latency);
        c.redis.remote_latency = flatten(&c.redis.remote_latency);
        c.queue_latency = flatten(&c.queue_latency);
        c.ser.per_op = flatten(&c.ser.per_op);
        c.worker_hop = flatten(&c.worker_hop);
        c
    }

    /// The shared-FS parameters for a given site (Fig. 4 runs put the
    /// thinker at RCC; any other site gets its own FS view).
    pub fn fs_for(&self, site: SiteId) -> FsParams {
        if self.fs_theta.members.contains(site) {
            self.fs_theta.clone()
        } else if self.fs_venti.members.contains(site) {
            self.fs_venti.clone()
        } else {
            FsParams {
                members: SiteSet::of(&[site]),
                ..self.fs_theta.clone()
            }
        }
    }
}

/// Task-model constants from §III: durations and payload sizes of every
/// task type in both applications.
pub mod tasks {
    use super::*;
    use hetflow_store::bytes::{KB, MB};

    /// Molecular design: tight-binding IP simulation (~60 s CPU, 1 MB).
    pub fn moldesign_simulate_duration() -> Dist {
        Dist::LogNormal { median: 60.0, sigma: 0.25 }
    }
    /// Simulation result payload.
    pub const MOLDESIGN_SIM_BYTES: u64 = MB;

    /// Molecular design, degraded fidelity: a TTM-like classical IP
    /// estimate (~1.5 s CPU) — the cheap substitute overload protection
    /// swaps in for the tight-binding call while the campaign runs in
    /// degraded mode. Cost-only model: the observable is unchanged,
    /// only the node-seconds per answer shrink.
    pub fn moldesign_simulate_fast_duration() -> Dist {
        Dist::LogNormal { median: 1.5, sigma: 0.25 }
    }

    /// Molecular design: MPNN training (340 s GPU, 10 MB).
    pub fn moldesign_train_duration() -> Dist {
        Dist::LogNormal { median: 340.0, sigma: 0.15 }
    }
    /// Model payload per training task.
    pub const MOLDESIGN_TRAIN_BYTES: u64 = 10 * MB;

    /// Molecular design: full-library inference (900 s GPU per model,
    /// 2.4 GB moved per task: weights + inputs + outputs).
    pub fn moldesign_infer_duration() -> Dist {
        Dist::LogNormal { median: 900.0, sigma: 0.1 }
    }
    /// Inference input payload (weights + molecule batch).
    pub const MOLDESIGN_INFER_IN_BYTES: u64 = 2_100 * MB;
    /// The molecule-batch share of the inference input — identical for
    /// every model of a round, so it is proxied once and shared.
    pub const MOLDESIGN_INFER_BATCH_BYTES: u64 = 2_000 * MB;
    /// The per-model weights share of the inference input.
    pub const MOLDESIGN_INFER_WEIGHTS_BYTES: u64 = 100 * MB;
    /// Inference output payload (scores).
    pub const MOLDESIGN_INFER_OUT_BYTES: u64 = 300 * MB;

    /// Fine-tuning: DFT cluster calculation (~360 s CPU, 20 kB).
    pub fn finetune_simulate_duration() -> Dist {
        Dist::LogNormal { median: 360.0, sigma: 0.3 }
    }
    /// DFT result payload.
    pub const FINETUNE_SIM_BYTES: u64 = 20 * KB;

    /// Fine-tuning: SchNet training (~4 min GPU, 21 MB).
    pub fn finetune_train_duration() -> Dist {
        Dist::LogNormal { median: 240.0, sigma: 0.2 }
    }
    /// Training payload.
    pub const FINETUNE_TRAIN_BYTES: u64 = 21 * MB;

    /// Fine-tuning: inference on a batch of 100 structures (3.2 s GPU,
    /// 3 MB).
    pub fn finetune_infer_duration() -> Dist {
        Dist::LogNormal { median: 3.2, sigma: 0.2 }
    }
    /// Inference payload.
    pub const FINETUNE_INFER_BYTES: u64 = 3 * MB;

    /// Fine-tuning: surrogate-MD sampling (1–3 s CPU, 3 MB).
    pub fn finetune_sample_duration() -> Dist {
        Dist::Uniform { lo: 1.0, hi: 3.0 }
    }
    /// Sampling payload.
    pub const FINETUNE_SAMPLE_BYTES: u64 = 3 * MB;

    /// The "6 node-hours of compute" budget of §V-E1, as virtual time on
    /// the simulation workers.
    pub fn moldesign_budget() -> Duration {
        Duration::from_secs(6 * 3600)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = Calibration::default();
        assert_eq!(c.fnx.small_threshold, 20_000, "FuncX ElastiCache split");
        assert_eq!(c.fnx.payload_cap, 10_000_000, "FuncX payload cap");
        assert_eq!(c.proxy_threshold, 10_000, "§V-F recommendation");
        assert!(c.redis.connected.contains(VENTI), "tunnel to Venti");
        assert!(c.fs_theta.members.contains(THETA));
        assert!(!c.fs_theta.members.contains(VENTI), "Venti has no Theta FS");
    }

    #[test]
    fn deterministic_variant_has_no_spread() {
        let c = Calibration::deterministic();
        let mut rng = hetflow_sim::SimRng::from_seed(1);
        let a = c.fnx.https_latency.sample(&mut rng);
        let b = c.fnx.https_latency.sample(&mut rng);
        assert_eq!(a, b);
        assert!(matches!(c.globus.service_time, Dist::Constant(_)));
    }

    #[test]
    fn fs_for_known_and_unknown_sites() {
        let c = Calibration::default();
        assert!(c.fs_for(THETA).members.contains(THETA));
        assert!(c.fs_for(VENTI).members.contains(VENTI));
        let rcc = c.fs_for(crate::platform::RCC);
        assert!(rcc.members.contains(crate::platform::RCC));
        assert!(!rcc.members.contains(THETA));
    }

    #[test]
    fn globus_service_window_matches_paper() {
        // §V-D1: transfers typically complete in 1–5 s; the service-time
        // distribution must put most mass in that window.
        let c = Calibration::default();
        let mut rng = hetflow_sim::SimRng::from_seed(2);
        let mut in_window = 0;
        for _ in 0..1000 {
            let s = c.globus.service_time.sample(&mut rng);
            if (1.0..=5.0).contains(&s) {
                in_window += 1;
            }
        }
        assert!(in_window > 850, "only {in_window}/1000 in 1–5 s");
    }

    #[test]
    fn task_durations_match_paper_medians() {
        use tasks::*;
        let mut rng = hetflow_sim::SimRng::from_seed(3);
        let mut median = |d: &Dist| {
            let mut v: Vec<f64> = (0..1001).map(|_| d.sample(&mut rng)).collect();
            v.sort_by(f64::total_cmp);
            v[500]
        };
        assert!((median(&moldesign_simulate_duration()) - 60.0).abs() < 5.0);
        assert!((median(&moldesign_train_duration()) - 340.0).abs() < 20.0);
        assert!((median(&moldesign_infer_duration()) - 900.0).abs() < 40.0);
        assert!((median(&finetune_simulate_duration()) - 360.0).abs() < 30.0);
        assert!((median(&finetune_sample_duration()) - 2.0).abs() < 0.2);
    }
}
