//! The experimental platform topology (§V-A of the paper).
//!
//! Three sites matter:
//!
//! * **Theta** — the ALCF supercomputer: login node (hosting the Thinker
//!   and Task Server) and KNL compute nodes, all sharing a Lustre file
//!   system. One site here, since data written by any Theta process is
//!   visible to the others.
//! * **Venti** — the NVIDIA server with 20 T4 GPUs. "Representative of
//!   off-site resources": separate network, no Theta file system, its
//!   own authentication.
//! * **RCC** — a University of Chicago Research Computing Center login
//!   node, used as the remote thinker host in the Globus backend
//!   microbenchmark (Fig. 4).
//!
//! The cloud provider hosting the FaaS and transfer services is not a
//! site — it has no workers and holds data only transiently — so it is
//! modelled inside the fabric/transfer cost models instead.

use hetflow_store::SiteId;

/// Theta: login + KNL compute + shared Lustre.
pub const THETA: SiteId = SiteId(0);

/// Venti: the 20×T4 GPU server on a separate network.
pub const VENTI: SiteId = SiteId(1);

/// UChicago RCC login node (Fig. 4's inter-site thinker host).
pub const RCC: SiteId = SiteId(2);

/// Human-readable site name.
pub fn site_name(site: SiteId) -> &'static str {
    match site {
        THETA => "theta",
        VENTI => "venti",
        RCC => "rcc",
        _ => "unknown",
    }
}

/// The task topics used across both applications plus the synthetic
/// no-op workload. Routing: CPU topics run on Theta KNL workers, GPU
/// topics on Venti.
pub const CPU_TOPICS: &[&str] = &["simulate", "sample", "noop"];

/// Topics routed to the GPU pool.
pub const GPU_TOPICS: &[&str] = &["train", "infer"];

/// All topics, CPU first.
pub fn all_topics() -> Vec<&'static str> {
    CPU_TOPICS.iter().chain(GPU_TOPICS).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_are_distinct() {
        assert_ne!(THETA, VENTI);
        assert_ne!(THETA, RCC);
        assert_ne!(VENTI, RCC);
    }

    #[test]
    fn names_resolve() {
        assert_eq!(site_name(THETA), "theta");
        assert_eq!(site_name(VENTI), "venti");
        assert_eq!(site_name(RCC), "rcc");
        assert_eq!(site_name(SiteId(9)), "unknown");
    }

    #[test]
    fn topics_cover_both_pools() {
        let all = all_topics();
        assert_eq!(all.len(), 5);
        assert!(all.contains(&"simulate") && all.contains(&"infer"));
    }
}
