//! The three workflow-system configurations of §V-B, ready to deploy.
//!
//! 1. **Parsl** — direct connections, no pass-by-reference: all task
//!    data rides the control plane.
//! 2. **Parsl+Redis** — direct connections, ProxyStore with a Redis
//!    server (tunnel-reachable from Venti) for cross-site data and the
//!    shared file system for local data.
//! 3. **FnX+Globus** — cloud-managed FaaS for task instructions,
//!    ProxyStore with Globus for cross-site data and the file system
//!    for local data. No open ports at the resources.

use crate::calibration::Calibration;
use crate::platform::{all_topics, CPU_TOPICS, GPU_TOPICS, THETA, VENTI};
use hetflow_fabric::{
    ChaosTargets, EndpointSpec, Fabric, FnXExecutor, HtexEndpoint, HtexExecutor, Knob,
    ReliabilityLayer, TaskResult, WorkerPool, WorkerPoolConfig,
};
use hetflow_steer::{ClientQueues, QueueConfig, TaskServer};
use hetflow_store::{
    Backend, GlobusBackend, GlobusService, ProxyPolicy, Store,
};
use hetflow_sim::{channel, Receiver, Sim, SimRng, Tracer};
use std::rc::Rc;

/// Which workflow stack to deploy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkflowConfig {
    /// Parsl baseline, no ProxyStore.
    Parsl,
    /// Parsl with Redis/file-system ProxyStore.
    ParslRedis,
    /// FnX with Globus/file-system ProxyStore.
    FnXGlobus,
}

impl WorkflowConfig {
    /// Label used in reports, matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            WorkflowConfig::Parsl => "parsl",
            WorkflowConfig::ParslRedis => "parsl+redis",
            WorkflowConfig::FnXGlobus => "fnx+globus",
        }
    }

    /// All three configurations, in the paper's order.
    pub fn all() -> [WorkflowConfig; 3] {
        [WorkflowConfig::Parsl, WorkflowConfig::ParslRedis, WorkflowConfig::FnXGlobus]
    }

    /// True when this configuration requires open ports / tunnels at
    /// the resources (the deployment burden §IV removes).
    pub fn needs_open_ports(self) -> bool {
        !matches!(self, WorkflowConfig::FnXGlobus)
    }
}

/// Sizing and tuning of a deployment.
#[derive(Clone)]
pub struct DeploymentSpec {
    /// KNL simulation workers (paper: 8).
    pub cpu_workers: usize,
    /// T4 GPU workers (paper: 20).
    pub gpu_workers: usize,
    /// Auto-proxy threshold override; `None` uses the calibrated
    /// default (10 kB). `Some(0)` proxies everything (the Fig. 3
    /// setting).
    pub proxy_threshold: Option<u64>,
    /// Cost-model constants.
    pub calibration: Calibration,
    /// Master seed for all stochastic cost models.
    pub seed: u64,
    /// Worker failure injection (`None` = reliable workers).
    pub failure: Option<hetflow_fabric::FailureModel>,
    /// Per-topic retry/timeout/backoff policies governing how failures
    /// and delivery stalls are handled.
    pub retry: hetflow_fabric::RetryPolicies,
    /// CPU endpoint connectivity (FnX configuration only; HTEX has no
    /// store-and-forward tier, so outages there stall the link).
    pub cpu_connectivity: hetflow_fabric::Connectivity,
    /// GPU endpoint connectivity.
    pub gpu_connectivity: hetflow_fabric::Connectivity,
    /// Per-topic circuit-breaker / hedging / failover policies. The
    /// all-zero default disables every mechanism (PR-2 behavior).
    pub reliability: hetflow_fabric::ReliabilityPolicies,
    /// Extra CPU endpoints registered as failover targets behind the
    /// primary Theta endpoint (FnX configuration only). Each gets a
    /// small pool (`cpu_workers` slots) labelled `theta-f{i}`.
    pub cpu_failover_sites: usize,
    /// Connectivity for the failover endpoints, matched by index;
    /// missing entries default to always-on.
    pub failover_connectivity: Vec<hetflow_fabric::Connectivity>,
    /// Bound on the Theta pool's pending-task queue, enforced at
    /// delivery time with [`DeploymentSpec::overflow`]. `0` keeps the
    /// queue unbounded (the zero-value defer).
    pub cpu_queue_capacity: usize,
    /// Bound on the Venti pool's pending-task queue. `0` = unbounded.
    pub gpu_queue_capacity: usize,
    /// What a delivery does when it finds a bounded pool queue full.
    /// Irrelevant while both capacities are `0`.
    pub overflow: hetflow_sim::OverflowPolicy,
}

impl Default for DeploymentSpec {
    fn default() -> Self {
        DeploymentSpec {
            cpu_workers: 8,
            gpu_workers: 20,
            proxy_threshold: None,
            calibration: Calibration::default(),
            seed: 42,
            failure: None,
            retry: hetflow_fabric::RetryPolicies::default(),
            cpu_connectivity: hetflow_fabric::Connectivity::always_on(),
            gpu_connectivity: hetflow_fabric::Connectivity::always_on(),
            reliability: hetflow_fabric::ReliabilityPolicies::default(),
            cpu_failover_sites: 0,
            failover_connectivity: Vec::new(),
            cpu_queue_capacity: 0,
            gpu_queue_capacity: 0,
            overflow: hetflow_sim::OverflowPolicy::default(),
        }
    }
}

/// A wired-up workflow deployment.
pub struct Deployment {
    /// Thinker-side queue handle.
    pub queues: ClientQueues,
    /// The Theta KNL worker pool.
    pub cpu_pool: WorkerPool,
    /// The Venti GPU worker pool.
    pub gpu_pool: WorkerPool,
    /// The local (file-system) store, when ProxyStore is enabled.
    pub local_store: Option<Store>,
    /// The cross-site store (Redis or Globus), when enabled.
    pub remote_store: Option<Store>,
    /// The Globus transfer service, in the FnX+Globus configuration.
    pub globus: Option<GlobusService>,
    /// The fabric's reliability layer: breaker state, hedge/reroute
    /// counters, and breaker-transition observers.
    pub health: ReliabilityLayer,
    /// Chaos-engine dials for every endpoint/pool in this deployment —
    /// hand these to [`hetflow_fabric::ChaosSpec::install`].
    pub chaos: ChaosTargets,
    /// Failover CPU pools (`cpu_failover_sites` of them), in order.
    pub failover_pools: Vec<WorkerPool>,
    /// The tracer the deployment was wired with — application-level
    /// policies (e.g. fidelity degradation) emit through the same
    /// stream so their events fold into the digest.
    pub tracer: Tracer,
    /// Which configuration was deployed.
    pub config: WorkflowConfig,
}

/// Builds and wires a complete deployment on `sim`.
pub fn deploy(
    sim: &Sim,
    config: WorkflowConfig,
    spec: &DeploymentSpec,
    tracer: Tracer,
) -> Deployment {
    let cal = &spec.calibration;
    let rng = SimRng::stream(spec.seed, "deployment");
    let threshold = spec.proxy_threshold.unwrap_or(cal.proxy_threshold);

    // --- Stores and the auto-proxy policy -------------------------------
    let mut local_store = None;
    let mut remote_store = None;
    let mut globus_service = None;
    let policy = match config {
        WorkflowConfig::Parsl => ProxyPolicy::disabled(),
        WorkflowConfig::ParslRedis | WorkflowConfig::FnXGlobus => {
            let fs = Store::new(
                sim.clone(),
                "fs-theta",
                Backend::Fs(cal.fs_theta.clone()),
                rng.substream(1),
            );
            let remote = match config {
                WorkflowConfig::ParslRedis => Store::new(
                    sim.clone(),
                    "redis-theta",
                    Backend::Redis(cal.redis.clone()),
                    rng.substream(2),
                ),
                WorkflowConfig::FnXGlobus => {
                    let service =
                        GlobusService::new(sim.clone(), cal.globus.clone(), rng.substream(3));
                    globus_service = Some(service.clone());
                    Store::new(
                        sim.clone(),
                        "globus",
                        Backend::Globus(Box::new(GlobusBackend {
                            service,
                            src_fs: cal.fs_theta.clone(),
                            dst_fs: cal.fs_venti.clone(),
                            push_to: vec![THETA, VENTI],
                        })),
                        rng.substream(4),
                    )
                }
                WorkflowConfig::Parsl => unreachable!(),
            };
            // Local tasks use the file system; cross-site tasks use the
            // remote store (§V-B).
            let mut policy = ProxyPolicy::default();
            for &topic in CPU_TOPICS {
                policy = policy.with_topic(topic, fs.clone(), threshold);
            }
            for &topic in GPU_TOPICS {
                policy = policy.with_topic(topic, remote.clone(), threshold);
            }
            local_store = Some(fs);
            remote_store = Some(remote);
            policy
        }
    };

    // --- Worker pools ----------------------------------------------------
    let cpu_pool_config = WorkerPoolConfig {
        site: THETA,
        label: "theta".into(),
        workers: spec.cpu_workers,
        result_policy: policy.clone(),
        ser: cal.ser.clone(),
        local_hop: cal.worker_hop.clone(),
        failure: spec.failure.clone(),
        retry: spec.retry.clone(),
        start_delays: Vec::new(),
        pace: Knob::new(1.0),
        crash: Knob::new(0.0),
        queue_capacity: spec.cpu_queue_capacity,
        overflow: spec.overflow,
    };
    let gpu_pool_config = WorkerPoolConfig {
        site: VENTI,
        label: "venti".into(),
        workers: spec.gpu_workers,
        result_policy: policy.clone(),
        ser: cal.ser.clone(),
        local_hop: cal.worker_hop.clone(),
        failure: spec.failure.clone(),
        retry: spec.retry.clone(),
        start_delays: Vec::new(),
        pace: Knob::new(1.0),
        crash: Knob::new(0.0),
        queue_capacity: spec.gpu_queue_capacity,
        overflow: spec.overflow,
    };

    // --- Fabric ------------------------------------------------------------
    let (results_tx, results_rx): (_, Receiver<TaskResult>) = channel();
    type Wired =
        (Rc<dyn Fabric>, WorkerPool, WorkerPool, Vec<WorkerPool>, ReliabilityLayer, ChaosTargets);
    let (fabric, cpu_pool, gpu_pool, failover_pools, health, mut chaos): Wired = match config {
        WorkflowConfig::Parsl | WorkflowConfig::ParslRedis => {
            let exec = HtexExecutor::with_reliability(
                sim,
                cal.htex.clone(),
                vec![
                    HtexEndpoint {
                        pool: cpu_pool_config,
                        topics: CPU_TOPICS.to_vec(),
                        link: cal.link_theta.clone(),
                    },
                    HtexEndpoint {
                        pool: gpu_pool_config,
                        topics: GPU_TOPICS.to_vec(),
                        link: cal.link_venti.clone(),
                    },
                ],
                results_tx,
                rng.substream(5),
                tracer.clone(),
                spec.reliability.clone(),
            );
            let pools = exec.pools().to_vec();
            let (health, chaos) = (exec.health(), exec.chaos_targets());
            (Rc::new(exec), pools[0].clone(), pools[1].clone(), Vec::new(), health, chaos)
        }
        WorkflowConfig::FnXGlobus => {
            let mut endpoints = vec![
                EndpointSpec {
                    pool: cpu_pool_config.clone(),
                    topics: CPU_TOPICS.to_vec(),
                    connectivity: spec.cpu_connectivity.clone(),
                },
                EndpointSpec {
                    pool: gpu_pool_config,
                    topics: GPU_TOPICS.to_vec(),
                    connectivity: spec.gpu_connectivity.clone(),
                },
            ];
            // Failover CPU endpoints: registered after the primary, so
            // the reliability layer only routes to them when the
            // primary's breaker is open (or a reroute/hedge fires).
            for i in 0..spec.cpu_failover_sites {
                let mut pool = cpu_pool_config.clone();
                pool.label = format!("theta-f{i}");
                pool.pace = Knob::new(1.0);
                pool.crash = Knob::new(0.0);
                endpoints.push(EndpointSpec {
                    pool,
                    topics: CPU_TOPICS.to_vec(),
                    connectivity: spec
                        .failover_connectivity
                        .get(i)
                        .cloned()
                        .unwrap_or_else(hetflow_fabric::Connectivity::always_on),
                });
            }
            let exec = FnXExecutor::with_reliability(
                sim,
                cal.fnx.clone(),
                endpoints,
                results_tx,
                rng.substream(5),
                tracer.clone(),
                spec.reliability.clone(),
            );
            let pools = exec.pools().to_vec();
            let (health, chaos) = (exec.health(), exec.chaos_targets());
            (
                Rc::new(exec),
                pools[0].clone(),
                pools[1].clone(),
                pools[2..].to_vec(),
                health,
                chaos,
            )
        }
    };

    // --- Task server + thinker queues -----------------------------------
    // Chaos task storms submit straight through the fabric handle —
    // wired here because only the deployment owns the `Rc<dyn Fabric>`.
    chaos.storm = Some(Rc::clone(&fabric));
    let queues = TaskServer::start(
        sim,
        QueueConfig {
            thinker_site: THETA,
            queue_latency: cal.queue_latency.clone(),
            queue_bandwidth: cal.queue_bandwidth,
            ser: cal.ser.clone(),
            policy,
        },
        fabric,
        results_rx,
        &all_topics(),
        rng.substream(6),
        tracer.clone(),
    );

    Deployment {
        queues,
        cpu_pool,
        gpu_pool,
        local_store,
        remote_store,
        globus: globus_service,
        health,
        chaos,
        failover_pools,
        tracer,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_fabric::TaskWork;
    use hetflow_steer::Payload;
    use hetflow_store::bytes::{KB, MB};
    use std::time::Duration;

    fn noop_fn() -> hetflow_fabric::TaskFn {
        Rc::new(|_ctx| TaskWork::noop())
    }

    fn small_spec() -> DeploymentSpec {
        DeploymentSpec { cpu_workers: 2, gpu_workers: 2, ..Default::default() }
    }

    #[test]
    fn all_configs_run_cpu_and_gpu_tasks() {
        for config in WorkflowConfig::all() {
            let sim = Sim::new();
            let d = deploy(&sim, config, &small_spec(), Tracer::disabled());
            let q = d.queues.clone();
            let h = sim.spawn(async move {
                q.submit("simulate", vec![Payload::new(7u32, MB)], Rc::new(|ctx| {
                    TaskWork::new(*ctx.input::<u32>(0) * 2, 100 * KB, Duration::from_secs(60))
                }))
                .await;
                q.submit("train", vec![Payload::new(1u8, 21 * MB)], Rc::new(|_| {
                    TaskWork::new((), 21 * MB, Duration::from_secs(240))
                }))
                .await;
                let a = q.get_result("simulate").await.unwrap().resolve().await;
                let b = q.get_result("train").await.unwrap().resolve().await;
                (*a.value::<u32>(), a.record.site, b.record.site)
            });
            let (val, sim_site, train_site) = sim.block_on(h);
            assert_eq!(val, 14, "{}: value flows", config.label());
            assert_eq!(sim_site, THETA, "{}: simulate on Theta", config.label());
            assert_eq!(train_site, VENTI, "{}: train on Venti", config.label());
        }
    }

    #[test]
    fn fnx_globus_proxies_cross_site_data() {
        let sim = Sim::new();
        let d = deploy(&sim, WorkflowConfig::FnXGlobus, &small_spec(), Tracer::disabled());
        let q = d.queues.clone();
        sim.spawn(async move {
            q.submit("train", vec![Payload::new((), 21 * MB)], noop_fn()).await;
            q.get_result("train").await.unwrap().resolve().await;
        });
        sim.run();
        let remote = d.remote_store.as_ref().unwrap();
        assert!(remote.stats().puts >= 1, "training payload must go through Globus store");
        assert!(d.globus.as_ref().unwrap().transfers_started() >= 1);
    }

    #[test]
    fn parsl_redis_uses_fs_for_local_and_redis_for_remote() {
        let sim = Sim::new();
        let d = deploy(&sim, WorkflowConfig::ParslRedis, &small_spec(), Tracer::disabled());
        let q = d.queues.clone();
        sim.spawn(async move {
            q.submit("simulate", vec![Payload::new((), MB)], noop_fn()).await;
            q.submit("train", vec![Payload::new((), MB)], noop_fn()).await;
            q.get_result("simulate").await.unwrap().resolve().await;
            q.get_result("train").await.unwrap().resolve().await;
        });
        sim.run();
        assert!(d.local_store.as_ref().unwrap().stats().puts >= 1, "simulate -> fs");
        assert!(d.remote_store.as_ref().unwrap().stats().puts >= 1, "train -> redis");
    }

    #[test]
    fn parsl_baseline_moves_data_inline() {
        let sim = Sim::new();
        let d = deploy(&sim, WorkflowConfig::Parsl, &small_spec(), Tracer::disabled());
        assert!(d.local_store.is_none());
        assert!(d.remote_store.is_none());
        let q = d.queues.clone();
        let h = sim.spawn(async move {
            q.submit("train", vec![Payload::new(vec![1u8; 4], 50 * MB)], Rc::new(|ctx| {
                let v = ctx.input::<Vec<u8>>(0);
                TaskWork::new(v.len(), 100, Duration::ZERO)
            }))
            .await;
            let r = q.get_result("train").await.unwrap().resolve().await;
            *r.value::<usize>()
        });
        assert_eq!(sim.block_on(h), 4, "50MB payload rides the direct links");
    }

    #[test]
    fn config_labels_and_ports() {
        assert_eq!(WorkflowConfig::Parsl.label(), "parsl");
        assert_eq!(WorkflowConfig::ParslRedis.label(), "parsl+redis");
        assert_eq!(WorkflowConfig::FnXGlobus.label(), "fnx+globus");
        assert!(WorkflowConfig::Parsl.needs_open_ports());
        assert!(WorkflowConfig::ParslRedis.needs_open_ports());
        assert!(!WorkflowConfig::FnXGlobus.needs_open_ports());
    }

    #[test]
    fn deployment_is_deterministic() {
        let run = || {
            let sim = Sim::new();
            let d = deploy(&sim, WorkflowConfig::FnXGlobus, &small_spec(), Tracer::disabled());
            let q = d.queues.clone();
            let h = sim.spawn(async move {
                for i in 0..5 {
                    q.submit("simulate", vec![Payload::new(i, MB)], noop_fn()).await;
                }
                let mut lifetimes = Vec::new();
                for _ in 0..5 {
                    let r = q.get_result("simulate").await.unwrap().resolve().await;
                    lifetimes.push(r.record.timing.lifetime().unwrap());
                }
                lifetimes
            });
            sim.block_on(h)
        };
        assert_eq!(run(), run());
    }
}
