//! # hetflow
//!
//! A full-system Rust reproduction of *"Cloud Services Enable Efficient
//! AI-Guided Simulation Workflows across Heterogeneous Resources"*
//! (Ward et al.): cloud-managed FaaS + pass-by-reference data fabric +
//! agent-based steering, evaluated on a deterministic discrete-event
//! simulation of the paper's heterogeneous testbed.
//!
//! This crate is a façade: it re-exports the workspace's public API.
//!
//! * [`sim`] — virtual-time kernel (executor, channels, RNG, metrics).
//! * [`store`] — ProxyStore model: lazy proxies over Redis-, FS-, and
//!   Globus-model backends.
//! * [`fabric`] — compute fabrics: FnX (federated FaaS) and HTEX
//!   (direct-connection) executors over shared worker pools.
//! * [`steer`] — Colmena-model thinker agents, task server, resource
//!   counter, life-cycle records.
//! * [`chem`] / [`ml`] — synthetic chemistry and learnable-surrogate
//!   substrates (the science that runs inside tasks).
//! * [`core`] — platform topology, calibration table, and the three
//!   §V-B workflow configurations.
//! * [`apps`] — the two applications: molecular design and surrogate
//!   fine-tuning.
//!
//! See `examples/quickstart.rs` for a guided tour and
//! `crates/bench/src/bin/` for the figure regenerators.

pub use hetflow_apps as apps;
pub use hetflow_chem as chem;
pub use hetflow_core as core;
pub use hetflow_fabric as fabric;
pub use hetflow_ml as ml;
pub use hetflow_sim as sim;
pub use hetflow_steer as steer;
pub use hetflow_store as store;

/// Commonly used items for building campaigns.
pub mod prelude {
    pub use hetflow_apps::finetune::FinetuneParams;
    pub use hetflow_apps::moldesign::MolDesignParams;
    pub use hetflow_core::{deploy, Calibration, Deployment, DeploymentSpec, WorkflowConfig};
    pub use hetflow_fabric::{
        BreakerConfig, ChaosAction, ChaosSpec, Connectivity, HedgeConfig, ReliabilityPolicies,
        ReliabilityPolicy, RetryPolicies, RetryPolicy, TaskError, TaskFn, TaskOutcome, TaskWork,
    };
    pub use hetflow_steer::{Breakdown, ClientQueues, Payload, Thinker};
    pub use hetflow_sim::{Sim, SimRng, SimTime, Tracer};
}
