//! `hetflow` — command-line front end for the reproduction.
//!
//! ```text
//! hetflow moldesign [--config parsl|parsl+redis|fnx+globus] [--seed N]
//!                   [--budget-hours H] [--library N]
//! hetflow finetune  [--config ...] [--seed N] [--target N]
//! hetflow noop      [--fabric fnx|htex] [--store none|redis|fs|globus]
//!                   [--size BYTES] [--tasks N]
//! hetflow compare   [--seed N]          # both apps, all three configs
//! ```

use hetflow::apps::{finetune, moldesign};
use hetflow::prelude::*;
use hetflow::steer::Breakdown;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return;
    };
    let opts = Opts::parse(&args[1..]);
    match cmd.as_str() {
        "moldesign" => cmd_moldesign(&opts),
        "finetune" => cmd_finetune(&opts),
        "noop" => cmd_noop(&opts),
        "compare" => cmd_compare(&opts),
        other => {
            eprintln!("unknown command: {other}\n");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    println!(
        "hetflow — AI-guided simulation workflows across heterogeneous resources\n\
         \n\
         commands:\n\
         \x20 moldesign   run the molecular-design campaign\n\
         \x20 finetune    run the surrogate fine-tuning campaign\n\
         \x20 noop        run the synthetic no-op latency experiment\n\
         \x20 compare     run both applications on all three configurations\n\
         \n\
         common flags: --config <parsl|parsl+redis|fnx+globus> --seed <N>\n\
         moldesign:    --budget-hours <H> --library <N>\n\
         finetune:     --target <N>\n\
         noop:         --fabric <fnx|htex> --store <none|redis|fs|globus>\n\
         \x20           --size <BYTES> --tasks <N>"
    );
}

struct Opts {
    pairs: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                eprintln!("expected --flag, got {flag}");
                std::process::exit(2);
            };
            let Some(value) = it.next() else {
                eprintln!("--{name} needs a value");
                std::process::exit(2);
            };
            pairs.push((name.to_owned(), value.clone()));
        }
        Opts { pairs }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{name}: cannot parse {v}");
                std::process::exit(2);
            }),
        }
    }

    fn config(&self) -> WorkflowConfig {
        match self.get("config").unwrap_or("fnx+globus") {
            "parsl" => WorkflowConfig::Parsl,
            "parsl+redis" => WorkflowConfig::ParslRedis,
            "fnx+globus" => WorkflowConfig::FnXGlobus,
            other => {
                eprintln!("unknown --config {other}");
                std::process::exit(2);
            }
        }
    }
}

fn cmd_moldesign(opts: &Opts) {
    let config = opts.config();
    let seed = opts.num("seed", 7u64);
    let hours = opts.num("budget-hours", 6.0f64);
    let library = opts.num("library", 10_000usize);
    let sim = Sim::new();
    let d = deploy(&sim, config, &DeploymentSpec { seed, ..Default::default() }, Tracer::disabled());
    let o = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: library,
            budget: Duration::from_secs_f64(hours * 3600.0),
            seed,
            ..Default::default()
        },
    );
    println!("config       : {}", config.label());
    println!("simulations  : {}", o.simulations);
    println!("found (IP>14): {}", o.found);
    println!("ml makespan  : {:.0} s median over {} rounds", o.ml_makespans.median(), o.ml_makespans.len());
    println!("cpu idle     : {:.0} ms median", o.cpu_idle.median() * 1e3);
    println!("virtual time : {}", o.end);
}

fn cmd_finetune(opts: &Opts) {
    let config = opts.config();
    let seed = opts.num("seed", 11u64);
    let target = opts.num("target", 64usize);
    let sim = Sim::new();
    let d = deploy(&sim, config, &DeploymentSpec { seed, ..Default::default() }, Tracer::disabled());
    let o = finetune::run(
        &sim,
        &d,
        FinetuneParams { target_new: target, seed, ..Default::default() },
    );
    println!("config          : {}", config.label());
    println!("new structures  : {}", o.new_structures);
    println!("training rounds : {}", o.training_rounds);
    println!("force rmsd      : {:.3} (was {:.3} before fine-tuning)", o.final_force_rmsd, o.initial_force_rmsd);
    println!("virtual time    : {}", o.end);
}

fn cmd_noop(opts: &Opts) {
    use hetflow_bench_shim::*;
    let fabric = match opts.get("fabric").unwrap_or("fnx") {
        "fnx" => FabricKind::FnX,
        "htex" => FabricKind::Htex,
        other => {
            eprintln!("unknown --fabric {other}");
            std::process::exit(2);
        }
    };
    let store = match opts.get("store").unwrap_or("none") {
        "none" => StoreKind::None,
        "redis" => StoreKind::Redis,
        "fs" => StoreKind::Fs,
        "globus" => StoreKind::Globus,
        other => {
            eprintln!("unknown --store {other}");
            std::process::exit(2);
        }
    };
    let size = opts.num("size", 1_000_000u64);
    let tasks = opts.num("tasks", 50usize);
    let mut p = NoopPipeline::fig4(store);
    p.fabric = fabric;
    let b = p.run(size, tasks);
    let row = b.median_row();
    println!("fabric {:?}, store {}, {} tasks of {} bytes", fabric, store.label(), tasks, size);
    println!("thinker->server : {:>9.1} ms", row.thinker_to_server_ms);
    println!("serialization   : {:>9.1} ms", row.serialization_ms);
    println!("server->worker  : {:>9.1} ms", row.server_to_worker_ms);
    println!("time on worker  : {:>9.1} ms", row.time_on_worker_ms);
    println!("worker->server  : {:>9.1} ms", row.worker_to_server_ms);
    println!("lifetime        : {:>9.1} ms", row.lifetime_ms);
}

fn cmd_compare(opts: &Opts) {
    let seed = opts.num("seed", 7u64);
    println!("== molecular design (4 node-hours, 6000 candidates) ==");
    println!("{:<12} {:>6} {:>6} {:>12}", "config", "sims", "found", "ml-makespan");
    for config in WorkflowConfig::all() {
        let sim = Sim::new();
        let d = deploy(&sim, config, &DeploymentSpec { seed, ..Default::default() }, Tracer::disabled());
        let o = moldesign::run(
            &sim,
            &d,
            MolDesignParams {
                library_size: 6_000,
                budget: Duration::from_secs(4 * 3600),
                seed,
                ..Default::default()
            },
        );
        println!(
            "{:<12} {:>6} {:>6} {:>10.0} s",
            config.label(),
            o.simulations,
            o.found,
            o.ml_makespans.median()
        );
    }
    println!("\n== surrogate fine-tuning (32 new structures) ==");
    println!("{:<12} {:>10} {:>10} {:>12}", "config", "rmsd-pre", "rmsd-post", "overhead p50");
    for config in WorkflowConfig::all() {
        let sim = Sim::new();
        let d = deploy(&sim, config, &DeploymentSpec { seed, ..Default::default() }, Tracer::disabled());
        let o = finetune::run(
            &sim,
            &d,
            FinetuneParams { target_new: 32, seed, ..Default::default() },
        );
        let b = Breakdown::of(&o.records, None);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.2} s",
            config.label(),
            o.initial_force_rmsd,
            o.final_force_rmsd,
            b.overhead.median()
        );
    }
}

/// The no-op pipeline lives in `hetflow-bench`; a thin local copy of the
/// needed pieces keeps the CLI independent of the bench crate's dev-only
/// dependencies.
mod hetflow_bench_shim {
    pub use hetflow_bench::{FabricKind, NoopPipeline, StoreKind};
}
