//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in a hermetic container with no crates.io
//! access, so the real criterion cannot be fetched. This crate vendors
//! the API slice the `hetflow-bench` benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `b.iter(..)`, the `criterion_group!`
//! / `criterion_main!` macros — timing with plain [`std::time::Instant`]
//! and printing a one-line median per benchmark. It exists to keep
//! `cargo bench` building and producing usable numbers, not to match
//! criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, e.g. `sleepers/100`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of samples and records the
    /// median.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.median = times[times.len() / 2];
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in's sample count alone
    /// bounds runtime, so the target measurement time is ignored.
    pub fn measurement_time(self, _t: Duration) -> Criterion {
        self
    }

    /// Accepted for API compatibility; the stand-in does no warm-up.
    pub fn warm_up_time(self, _t: Duration) -> Criterion {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _c: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, median: Duration::ZERO };
    f(&mut b);
    println!("bench {label:<48} median {:>12.3?} ({samples} samples)", b.median);
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_workload() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_prefixes_and_inputs_flow_through() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| seen += x);
        });
        g.finish();
        assert_eq!(seen, 14);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
    }
}
