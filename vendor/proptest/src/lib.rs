//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in a hermetic container with no crates.io
//! access, so the real proptest cannot be fetched. This crate vendors
//! the small slice of its API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * integer-range / `any::<T>()` / tuple / `prop::collection::vec`
//!   strategies,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of
//! the test name), which fits the repo's determinism contract: a
//! property-test failure reproduces on every run, everywhere. There is
//! no shrinking — the panic message reports the failing case index, and
//! the drawn values appear in the assertion message.

/// Test-runner configuration (cases per property).
pub mod test_runner {
    /// Number of random cases each property is checked against.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic case-generation stream (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the test's name, so every test owns an
        /// independent, reproducible sequence.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for &b in name.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)` for nonzero `n`.
        pub fn below(&mut self, n: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Something that can produce a random value of its output type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `any::<T>()` marker strategy.
    pub struct AnyStrategy<T>(::std::marker::PhantomData<T>);

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy behind `any::<T>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(::std::marker::PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A / 0),
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3)
    );
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive length range for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }
    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Generates a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — a vector whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                let run = || { $body };
                if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest {}: case {}/{} failed",
                        stringify!($name),
                        case,
                        config.cases
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(0usize..1), &mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::for_test("vecsize");
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u32..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trips(x in 1u64..100, flip in any::<bool>(), v in prop::collection::vec(0u8..4, 0..6)) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(flip as u8 <= 1, true);
            prop_assert!(v.len() < 6, "len {}", v.len());
        }
    }
}
